// Command ifdk-router fronts a fleet of ifdkd backends with one endpoint
// speaking the same versioned /v1 API as a single daemon. Jobs are placed
// by rendezvous-hashing their content cache key, so identical requests
// always land on the same backend and every node's result cache stays hot;
// SSE event streams and mid-run multipart slice streams proxy through
// unbuffered; /v1/metrics aggregates the whole fleet; and a health loop
// reroutes pending (never-started) jobs off dead backends.
//
//	ifdkd -addr :8081 -node b0 &
//	ifdkd -addr :8082 -node b1 &
//	ifdk-router -addr :8080 -backends b0=http://localhost:8081,b1=http://localhost:8082
//
// Clients point pkg/client (or curl) at the router exactly as they would at
// one ifdkd. Run each backend with a distinct -node so job IDs are globally
// unique across the fleet.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ifdk/internal/router"
)

func parseBackends(s string) ([]router.Backend, error) {
	if s == "" {
		return nil, fmt.Errorf("-backends is required (name=url,name=url,... or url,url,...)")
	}
	var out []router.Backend
	for i, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, u, ok := strings.Cut(item, "=")
		if !ok {
			name, u = fmt.Sprintf("b%d", i), item
		}
		out = append(out, router.Backend{Name: name, URL: strings.TrimRight(u, "/")})
	}
	return out, nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	backends := flag.String("backends", "",
		"comma-separated backends, name=url pairs (bare urls get b0,b1,... names matching each ifdkd's -node)")
	healthEvery := flag.Duration("health-every", 500*time.Millisecond, "backend health probe period")
	deadAfter := flag.Int("dead-after", 2, "consecutive failed probes before a backend is dead")
	flag.Parse()

	if err := run(*addr, *backends, *healthEvery, *deadAfter); err != nil {
		fmt.Fprintln(os.Stderr, "ifdk-router:", err)
		os.Exit(1)
	}
}

func run(addr, backendSpec string, healthEvery time.Duration, deadAfter int) error {
	bs, err := parseBackends(backendSpec)
	if err != nil {
		return err
	}
	rt, err := router.New(router.Options{
		Backends:    bs,
		HealthEvery: healthEvery,
		DeadAfter:   deadAfter,
		Logf:        log.Printf,
	})
	if err != nil {
		return err
	}
	defer rt.Close()

	srv := &http.Server{Addr: addr, Handler: rt}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("ifdk-router: serving on %s over %d backends (probe %v, dead after %d)",
			addr, len(bs), healthEvery, deadAfter)
		for _, b := range bs {
			log.Printf("ifdk-router:   backend %s -> %s", b.Name, b.URL)
		}
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Print("ifdk-router: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("ifdk-router: http shutdown: %v", err)
	}
	log.Print("ifdk-router: bye")
	return nil
}
