// Command phantomgen is the analog of RTK's forward-projection tool the
// paper uses to create its input datasets (Sec. 5.1): it renders cone-beam
// projections of an analytic phantom and writes them to a directory as raw
// .img files (little-endian float32 with a width/height header), optionally
// with Poisson noise and PNG previews.
//
// Example:
//
//	phantomgen -nu 256 -np 180 -phantom shepplogan -o dataset/ -preview 3
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"ifdk/internal/ct/geometry"
	"ifdk/internal/ct/phantom"
	"ifdk/internal/ct/projector"
	"ifdk/internal/volume"
)

func main() {
	nu := flag.Int("nu", 128, "detector pixels per side")
	np := flag.Int("np", 90, "number of projections over 2π")
	phantomName := flag.String("phantom", "shepplogan", "phantom: shepplogan|sphere|industrial")
	outDir := flag.String("o", "dataset", "output directory")
	noise := flag.Float64("noise", 0, "photons per pixel for Poisson noise (0 = noise-free)")
	seed := flag.Int64("seed", 1, "noise random seed")
	previews := flag.Int("preview", 0, "write PNG previews for the first N projections")
	flag.Parse()

	if err := run(*nu, *np, *phantomName, *outDir, *noise, *seed, *previews); err != nil {
		fmt.Fprintln(os.Stderr, "phantomgen:", err)
		os.Exit(1)
	}
}

func run(nu, np int, phantomName, outDir string, noise float64, seed int64, previews int) error {
	// The volume dimensions only set the geometry's voxel pitch here.
	g := geometry.Default(nu, nu, np, nu/2, nu/2, nu/2)
	var ph phantom.Phantom
	switch phantomName {
	case "shepplogan":
		ph = phantom.SheppLogan3D(g.FOVRadius() * 0.9)
	case "sphere":
		ph = phantom.UniformSphere(g.FOVRadius()*0.55, 1)
	case "industrial":
		ph = phantom.IndustrialBlock(g.FOVRadius() * 0.9)
	default:
		return fmt.Errorf("unknown phantom %q", phantomName)
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	fmt.Printf("rendering %d projections of %dx%d (%s)...\n", np, nu, nu, phantomName)
	imgs := projector.AnalyticAll(ph, g, 0)
	for s, img := range imgs {
		if noise > 0 {
			projector.AddPoissonNoise(img, noise, rng)
		}
		path := filepath.Join(outDir, fmt.Sprintf("proj_%06d.img", s))
		if err := os.WriteFile(path, volume.ImageToBytes(img), 0o644); err != nil {
			return err
		}
		if s < previews {
			f, err := os.Create(filepath.Join(outDir, fmt.Sprintf("proj_%06d.png", s)))
			if err != nil {
				return err
			}
			if err := img.WritePNG(f, 0, 0); err != nil {
				f.Close()
				return err
			}
			f.Close()
		}
	}
	fmt.Printf("wrote %d projections to %s\n", np, outDir)
	return nil
}
