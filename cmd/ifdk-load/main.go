// Command ifdk-load replays a mixed medical/industrial reconstruction
// workload against an ifdkd server (or an ifdk-router fronting a fleet —
// the generator cannot tell the difference) and reports service-level
// performance: throughput, submit→done latency percentiles, backpressure
// retries, cache hits and verification outcomes. All traffic flows through
// the pkg/client SDK over the versioned pkg/api contract — no hand-rolled
// HTTP. With no -addr it spins up an in-process server first, making the
// full service path a one-command benchmark alongside the Fig. 7 / Table 4
// harnesses:
//
//	ifdk-load -jobs 24 -clients 6 -workers 4
//	ifdk-load -addr http://localhost:8080 -jobs 50
//
// A fraction of the jobs are exact duplicates (exercising the result
// cache), a fraction request serial-reference verification, and one job is
// cancelled mid-flight to check teardown latency. The process exits
// non-zero if any job fails, any verified job exceeds the paper's 1e-5
// relative-RMSE bound, or the cancelled job does not settle promptly.
//
// With -mixed the generator runs the multi-client fairness scenario
// instead: one client submits only low-priority jobs while the other
// clients flood high-priority work, and a bulk client interleaves large
// volumes that saturate the cost budget (-max-queued-sec). Success requires
// every low-priority job to complete — priority aging at work — while cheap
// jobs keep being admitted around the budget-hogging large ones; the report
// prints per-class wait percentiles and the admission counters.
//
//	ifdk-load -mixed -jobs 36 -clients 6 -workers 2 -max-queued-sec 3
//
// With -stream the generator runs the streaming-delivery scenario instead:
// it submits one verified job, consumes /events (SSE, via client.Watch) and
// /stream (chunked multipart, via client.Stream) concurrently, and measures
// time-to-first-slice against time-to-full-volume (the stream's terminal
// part). Adding -gzip negotiates per-part gzip slice encoding and reports
// the bytes saved. The process exits non-zero unless the first slice and at
// least one progress event arrived while the job was still running, every
// slice streamed exactly once, and first-slice latency beat full-volume
// latency by a wide margin.
//
//	ifdk-load -stream -nx 64 -workers 2
//	ifdk-load -stream -gzip
//
// With -preview the generator runs the progressive coarse-to-fine
// scenario instead: it submits one quality=progressive job, consumes its
// stream via client.StreamProgressive, and measures time-to-first-preview
// (the coarse tier's first part) against time-to-full-volume. The process
// exits non-zero unless every preview part precedes every full-resolution
// part, the reassembled preview matches GET /preview bit for bit, and the
// first preview slice beats the full volume by a wide margin.
//
//	ifdk-load -preview -nx 64 -workers 2
//
// With -trace the generator additionally fetches one sampled job's span
// tree (GET /v1/jobs/{id}/trace) after the run and prints it as an
// indented waterfall — queue wait, dataset staging, per-round filter and
// AllGather, back-projection, reduce and store, with the router's proxy
// hop on top when pointed at an ifdk-router.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ifdk/internal/service"
	"ifdk/pkg/api"
	"ifdk/pkg/client"
	"ifdk/pkg/volume"
)

type result struct {
	id      string
	view    api.View
	latency time.Duration
	err     error
}

type loadConfig struct {
	addr         string
	jobs         int
	clients      int
	nx           int
	dupEvery     int
	verifyEvery  int
	workers      int
	queueCap     int
	timeout      time.Duration
	mixed        bool
	stream       bool
	preview      bool
	gzip         bool
	trace        bool
	maxQueuedSec float64
	quotaRPS     float64
	aging        time.Duration
	bigNX        int
}

func main() {
	var lc loadConfig
	flag.StringVar(&lc.addr, "addr", "", "server base URL (empty = start an in-process server)")
	flag.IntVar(&lc.jobs, "jobs", 24, "number of jobs to submit")
	flag.IntVar(&lc.clients, "clients", 6, "concurrent submitting clients")
	flag.IntVar(&lc.nx, "nx", 16, "volume voxels per side for every job")
	flag.IntVar(&lc.dupEvery, "dup-every", 3, "every n-th job repeats an earlier spec (0 = never)")
	flag.IntVar(&lc.verifyEvery, "verify-every", 4, "every n-th job verifies against the serial reference (0 = never)")
	flag.IntVar(&lc.workers, "workers", 4, "worker pool size (in-process server only)")
	flag.IntVar(&lc.queueCap, "queue", 8, "queue capacity (in-process server only)")
	flag.DurationVar(&lc.timeout, "timeout", 5*time.Minute, "overall deadline")
	flag.BoolVar(&lc.mixed, "mixed", false, "run the multi-client mixed-priority fairness scenario")
	flag.BoolVar(&lc.stream, "stream", false, "run the streaming time-to-first-slice scenario")
	flag.BoolVar(&lc.preview, "preview", false, "run the progressive time-to-first-preview scenario")
	flag.BoolVar(&lc.gzip, "gzip", false, "negotiate per-part gzip slice encoding in -stream and report bytes saved")
	flag.BoolVar(&lc.trace, "trace", false, "fetch and print one sampled job's span-tree waterfall after the run")
	flag.Float64Var(&lc.maxQueuedSec, "max-queued-sec", 0.5, "queued-work cost budget for -mixed (in-process server only)")
	flag.Float64Var(&lc.quotaRPS, "quota-rps", 0, "per-client quota for the in-process server (0 = off)")
	flag.DurationVar(&lc.aging, "aging", 150*time.Millisecond, "priority aging step for -mixed (in-process server only)")
	flag.IntVar(&lc.bigNX, "big-nx", 64, "volume side of the budget-saturating bulk jobs in -mixed")
	flag.Parse()

	if err := run(lc); err != nil {
		fmt.Fprintln(os.Stderr, "ifdk-load:", err)
		os.Exit(1)
	}
}

// specFor builds the i-th job of the mixed workload: alternating medical
// (Shepp–Logan head), industrial (machined block) and calibration (sphere)
// scans on varying grids, with periodic exact duplicates to exercise the
// result cache.
func specFor(i, nx, dupEvery, verifyEvery int) api.Spec {
	if dupEvery > 0 && i > 0 && i%dupEvery == 0 {
		// Repeat an earlier job's spec exactly; keep dupEvery so a
		// reference that is itself a dup slot resolves through the chain.
		return specFor(i/dupEvery-1, nx, dupEvery, verifyEvery)
	}
	phantoms := []string{"shepplogan", "industrial", "sphere"}
	grids := [][2]int{{2, 2}, {4, 2}, {2, 4}, {4, 1}}
	g := grids[i%len(grids)]
	s := api.Spec{
		Phantom: phantoms[i%len(phantoms)],
		NX:      nx,
		NP:      2*nx + 8*(i%3)*g[0]*g[1], // vary scan length, keep Np % R·C == 0
		R:       g[0],
		C:       g[1],
	}
	if verifyEvery > 0 && i%verifyEvery == 0 {
		s.Verify = true
	}
	return s
}

// newClient builds the shared SDK client: generous retries against
// backpressure, every retry counted into the report.
func newClient(addr string, lc loadConfig, retries *atomic.Int64) *client.Client {
	opts := []client.Option{client.WithRetry(client.Retry{
		Max:  1 << 20, // the load generator retries saturation until its own deadline
		Base: 25 * time.Millisecond,
		Cap:  250 * time.Millisecond,
		OnRetry: func(code string, _ int, _ time.Duration) {
			if code != "watch_reconnect" {
				retries.Add(1)
			}
		},
	})}
	if lc.gzip {
		opts = append(opts, client.WithGzip())
	}
	return client.New(addr, opts...)
}

func run(lc loadConfig) error {
	ctx, cancel := context.WithTimeout(context.Background(), lc.timeout)
	defer cancel()

	addr := lc.addr
	if addr == "" {
		opt := service.Options{Workers: lc.workers, QueueCap: lc.queueCap, QuotaRPS: lc.quotaRPS}
		if lc.mixed {
			opt.MaxQueuedSec = lc.maxQueuedSec
			opt.Aging = lc.aging
		}
		m := service.NewManager(opt)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: service.NewServer(m)}
		go srv.Serve(ln)
		defer func() {
			shutCtx, c := context.WithTimeout(context.Background(), 30*time.Second)
			defer c()
			srv.Shutdown(shutCtx)
			m.Shutdown(shutCtx)
		}()
		addr = "http://" + ln.Addr().String()
		fmt.Printf("in-process server on %s (%d workers, queue %d", addr, lc.workers, lc.queueCap)
		if lc.mixed {
			fmt.Printf(", budget %gs, aging %v", lc.maxQueuedSec, lc.aging)
		}
		fmt.Println(")")
	}

	var retries atomic.Int64
	c := newClient(addr, lc, &retries)
	if lc.stream {
		return runStream(ctx, c, lc)
	}
	if lc.preview {
		return runPreview(ctx, c, lc)
	}
	mode := "uniform"
	if lc.mixed {
		mode = "mixed-priority fairness"
	}
	fmt.Printf("submitting %d jobs from %d clients (%s, nx=%d, dup every %d, verify every %d)\n",
		lc.jobs, lc.clients, mode, lc.nx, lc.dupEvery, lc.verifyEvery)

	var (
		wg        sync.WaitGroup
		resMu     sync.Mutex
		results   []result
		jobIdx    atomic.Int64
		wallStart = time.Now()
	)
	for cl := 0; cl < lc.clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for {
				i := int(jobIdx.Add(1)) - 1
				if i >= lc.jobs {
					return
				}
				spec := specFor(i, lc.nx, lc.dupEvery, lc.verifyEvery)
				if lc.mixed {
					spec.Client = fmt.Sprintf("client-%d", cl)
					// Client 0 is the background tenant: everything it
					// submits is low priority. Everyone else floods high.
					if cl == 0 {
						spec.Priority = "low"
					} else {
						spec.Priority = "high"
						spec.Verify = false // keep the flood cheap
					}
				}
				r := driveJob(ctx, c, spec)
				resMu.Lock()
				results = append(results, r)
				resMu.Unlock()
			}
		}(cl)
	}

	// In mixed mode a bulk client bursts large volumes whose cost estimates
	// saturate the queued-work budget: all but the first shed 503s and
	// retry while the cheap stream keeps flowing around them. The burst
	// waits out a short warmup so the server's cost calibration has seen a
	// few completed runs (estimates start at the raw model scale).
	var bulk []result
	var bulkMu sync.Mutex
	var bulkWG sync.WaitGroup
	if lc.mixed {
		const burst = 3
		for b := 0; b < burst; b++ {
			bulkWG.Add(1)
			go func(b int) {
				defer bulkWG.Done()
				time.Sleep(400*time.Millisecond + time.Duration(b)*10*time.Millisecond)
				spec := api.Spec{
					Phantom:  "industrial",
					NX:       lc.bigNX,
					NP:       2 * lc.bigNX,
					R:        2,
					C:        2,
					Priority: "normal",
					Client:   "bulk",
				}
				r := driveJob(ctx, c, spec)
				bulkMu.Lock()
				bulk = append(bulk, r)
				bulkMu.Unlock()
			}(b)
		}
	}

	// One extra job is cancelled mid-flight to measure teardown latency.
	cancelRes := make(chan error, 1)
	go func() { cancelRes <- cancelProbe(ctx, c, lc.nx) }()

	wg.Wait()
	bulkWG.Wait()
	wall := time.Since(wallStart)
	cancelErr := <-cancelRes

	results = append(results, bulk...)
	return report(ctx, c, lc, results, wall, retries.Load(), cancelErr)
}

// driveJob submits one spec (the SDK retries backpressure under the hood)
// and awaits its terminal state.
func driveJob(ctx context.Context, c *client.Client, spec api.Spec) result {
	start := time.Now()
	var r result
	v, err := c.Submit(ctx, spec)
	if err != nil {
		r.err = err
		return r
	}
	r.id = v.ID
	r.view, err = c.Await(ctx, v.ID, 10*time.Millisecond)
	if err != nil {
		r.err = err
		return r
	}
	r.latency = time.Since(start)
	if r.view.State != api.StateDone {
		r.err = fmt.Errorf("job %s ended %s: %s", r.id, r.view.State, r.view.Error)
	}
	return r
}

// runStream is the streaming-delivery scenario: one verified job, its
// /events and /stream endpoints consumed live through the SDK, reporting
// time-to-first-slice (the iFDK "instant" metric) against
// time-to-full-volume. Verification is on deliberately — it is the
// service's slowest epilogue, so the gap between "first slice in hand" and
// "job terminal" is the paper's point made measurable.
func runStream(ctx context.Context, c *client.Client, lc loadConfig) error {
	nx := lc.nx
	if nx < 48 {
		// Below this the whole job finishes in ~100ms and fixed overheads
		// (HTTP, scheduling, reduce) swamp the delivery latencies being
		// measured; pass -nx 48 or larger to override the floor.
		fmt.Printf("raising -nx %d to 64 for a measurable run\n", nx)
		nx = 64
	}
	spec := api.Spec{Phantom: "sphere", NX: nx, NP: 4 * nx, R: 2, C: 2,
		Verify: true, Client: "stream"}
	enc := "identity"
	if lc.gzip {
		enc = "gzip per part"
	}
	fmt.Printf("streaming scenario: one verified %s job nx=%d np=%d on a 2x2 grid (%s)\n",
		spec.Phantom, spec.NX, spec.NP, enc)

	// Warm the dataset first: staging is content-addressed and shared, so a
	// cheap unverified warmup job pays the one-time projection synthesis and
	// the measured job then isolates delivery latency — the repeat-scan path
	// a clinic actually sits in. The warmup's wall time is the cold-start
	// cost and is reported alongside.
	warm := spec
	warm.Verify = false
	warmStart := time.Now()
	if w := driveJob(ctx, c, warm); w.err != nil {
		return fmt.Errorf("stream warmup: %w", w.err)
	}
	fmt.Printf("warmup (staging + first reconstruction): %v\n",
		time.Since(warmStart).Round(time.Millisecond))

	start := time.Now()
	v, err := c.Submit(ctx, spec)
	if err != nil {
		return fmt.Errorf("stream submit: %w", err)
	}
	if v.CacheHit {
		return fmt.Errorf("stream scenario: job %s was a cache hit; point -addr at a fresh server", v.ID)
	}

	type sseResult struct {
		rounds, slices       int
		roundBeforeSlice     bool
		firstSlice, terminal time.Duration
		state                api.State
		err                  error
	}
	ssec := make(chan sseResult, 1)
	go func() {
		var r sseResult
		defer func() { ssec <- r }()
		r.state, r.err = c.Watch(ctx, v.ID, func(e api.Event) error {
			switch {
			case e.Type == api.EventRound:
				r.rounds++
				if r.slices == 0 {
					r.roundBeforeSlice = true
				}
			case e.Type == api.EventSlice:
				if r.slices == 0 {
					r.firstSlice = time.Since(start)
				}
				r.slices++
			case e.Type.Terminal():
				r.terminal = time.Since(start)
			}
			return nil
		})
	}()

	type streamResult struct {
		res                  *client.StreamResult
		firstSlice, terminal time.Duration
		err                  error
	}
	strc := make(chan streamResult, 1)
	go func() {
		var r streamResult
		defer func() { strc <- r }()
		first := true
		r.res, r.err = c.Stream(ctx, v.ID, func(z, total int) {
			if first {
				r.firstSlice = time.Since(start)
				first = false
			}
		})
		r.terminal = time.Since(start)
	}()

	sse := <-ssec
	str := <-strc
	if sse.err != nil {
		return fmt.Errorf("events consumer: %w", sse.err)
	}
	if str.err != nil {
		return fmt.Errorf("stream consumer: %w", str.err)
	}

	ttfs := str.firstSlice
	ttfv := str.terminal
	fmt.Printf("\n=== streaming results (job %s) ===\n", v.ID)
	fmt.Printf("time-to-first-slice: %v  (%d/%d slices, %.1f KiB on the wire)\n",
		ttfs.Round(time.Millisecond), str.res.Slices, spec.NX, float64(str.res.WireBytes)/1024)
	fmt.Printf("time-to-full-volume: %v  (terminal state %s, SSE terminal %v)\n",
		ttfv.Round(time.Millisecond), str.res.Final.State, sse.terminal.Round(time.Millisecond))
	fmt.Printf("progress events:     %d rounds, %d slice events (first slice via SSE at %v)\n",
		sse.rounds, sse.slices, sse.firstSlice.Round(time.Millisecond))
	if lc.gzip {
		saved := str.res.RawBytes - str.res.WireBytes
		pct := 0.0
		if str.res.RawBytes > 0 {
			pct = 100 * float64(saved) / float64(str.res.RawBytes)
		}
		fmt.Printf("gzip:                %.1f KiB raw -> %.1f KiB wire, %.1f KiB saved (%.1f%%)\n",
			float64(str.res.RawBytes)/1024, float64(str.res.WireBytes)/1024, float64(saved)/1024, pct)
	}
	fmt.Printf("speedup:             first slice arrived at %.0f%% of full-volume latency\n",
		100*ttfs.Seconds()/ttfv.Seconds())
	if lc.trace {
		printTrace(ctx, c, v.ID)
	}

	switch {
	case str.res.Final.State != api.StateDone:
		return fmt.Errorf("streamed job ended %s: %s", str.res.Final.State, str.res.Final.Error)
	case str.res.Slices != spec.NX:
		return fmt.Errorf("streamed %d slices, want %d", str.res.Slices, spec.NX)
	case sse.rounds < 1 || !sse.roundBeforeSlice:
		return fmt.Errorf("no progress events before the first slice (%d rounds)", sse.rounds)
	case sse.slices != spec.NX:
		return fmt.Errorf("SSE delivered %d slice events, want %d", sse.slices, spec.NX)
	case ttfs.Seconds() >= 0.7*ttfv.Seconds():
		// Even on one core the serial verification epilogue alone puts the
		// first slice near 50% of completion; any parallelism pushes it
		// further down. Above 70% the streaming path is broken.
		return fmt.Errorf("first slice at %v is not a wide margin over full volume at %v (want < 70%%)", ttfs, ttfv)
	case lc.gzip && str.res.WireBytes >= str.res.RawBytes:
		return fmt.Errorf("gzip negotiated but saved nothing (%d wire >= %d raw)", str.res.WireBytes, str.res.RawBytes)
	}
	fmt.Println("streaming scenario OK")
	return nil
}

// runPreview is the progressive coarse-to-fine scenario: one
// quality=progressive job, its stream consumed through
// client.StreamProgressive, reporting time-to-first-preview (the coarse
// tier's first part) against time-to-full-volume. A preview-quality warmup
// pays dataset staging and the coarse reconstruction up front, so the
// measured job isolates the latency a viewer actually sees: how long until
// something renders versus how long until every full-resolution voxel is
// in hand.
func runPreview(ctx context.Context, c *client.Client, lc loadConfig) error {
	nx := lc.nx
	if nx < 64 {
		// A higher floor than -stream: the coarse tier is so cheap that the
		// full-resolution pass must be long enough for the gap to measure.
		fmt.Printf("raising -nx %d to 64 for a measurable run\n", nx)
		nx = 64
	}
	spec := api.Spec{Phantom: "shepplogan", NX: nx, NP: 4 * nx, R: 2, C: 2,
		Quality: api.QualityProgressive, Client: "preview"}
	fmt.Printf("progressive scenario: one %s job nx=%d np=%d on a 2x2 grid, quality=%s\n",
		spec.Phantom, spec.NX, spec.NP, spec.Quality)

	// Warm with the preview tier itself: it stages the same full-resolution
	// dataset (content-addressed, shared) and caches the coarse volume
	// under its own key, without touching the full-resolution cache entry
	// the progressive job must still compute.
	warm := spec
	warm.Quality = api.QualityPreview
	warmStart := time.Now()
	if w := driveJob(ctx, c, warm); w.err != nil {
		return fmt.Errorf("preview warmup: %w", w.err)
	}
	fmt.Printf("warmup (staging + coarse reconstruction): %v\n",
		time.Since(warmStart).Round(time.Millisecond))

	start := time.Now()
	v, err := c.Submit(ctx, spec)
	if err != nil {
		return fmt.Errorf("progressive submit: %w", err)
	}
	if v.CacheHit {
		return fmt.Errorf("progressive scenario: job %s was a cache hit; point -addr at a fresh server", v.ID)
	}

	var (
		firstPreview, firstFull time.Duration
		previewAfterFull        bool
	)
	res, err := c.StreamProgressive(ctx, v.ID, client.StreamHooks{
		OnPreview: func(z, total, factor int) {
			if firstPreview == 0 {
				firstPreview = time.Since(start)
			}
			if firstFull != 0 {
				previewAfterFull = true
			}
		},
		OnSlice: func(z, total int) {
			if firstFull == 0 {
				firstFull = time.Since(start)
			}
		},
	})
	if err != nil {
		return fmt.Errorf("progressive stream: %w", err)
	}
	ttfv := time.Since(start)

	fmt.Printf("\n=== progressive results (job %s) ===\n", v.ID)
	fmt.Printf("time-to-first-preview: %v  (factor %d, %d coarse slices)\n",
		firstPreview.Round(time.Millisecond), res.PreviewFactor, res.PreviewSlices)
	fmt.Printf("time-to-first-slice:   %v  (full resolution)\n", firstFull.Round(time.Millisecond))
	fmt.Printf("time-to-full-volume:   %v  (terminal state %s, %d slices, %.1f KiB on the wire)\n",
		ttfv.Round(time.Millisecond), res.Final.State, res.Slices, float64(res.WireBytes)/1024)
	if ttfv > 0 {
		fmt.Printf("speedup:               first preview at %.0f%% of full-volume latency\n",
			100*firstPreview.Seconds()/ttfv.Seconds())
	}
	if lc.trace {
		printTrace(ctx, c, v.ID)
	}

	// The /preview endpoint must serve the same coarse volume the stream
	// carried, bit for bit.
	pv, pf, err := c.Preview(ctx, v.ID)
	if err != nil {
		return fmt.Errorf("GET /preview: %w", err)
	}
	diff, err := volume.MaxAbsDiff(pv, res.Preview)
	if err != nil {
		return fmt.Errorf("comparing /preview against streamed tier: %w", err)
	}

	switch {
	case res.Final.State != api.StateDone:
		return fmt.Errorf("progressive job ended %s: %s", res.Final.State, res.Final.Error)
	case res.Preview == nil || res.PreviewSlices == 0 || res.PreviewFactor < 2:
		return fmt.Errorf("no preview tier streamed (factor %d, %d coarse slices)", res.PreviewFactor, res.PreviewSlices)
	case previewAfterFull:
		return errors.New("a preview part arrived after a full-resolution part")
	case res.Slices != nx:
		return fmt.Errorf("streamed %d full-resolution slices, want %d", res.Slices, nx)
	case pf != res.PreviewFactor || diff != 0:
		return fmt.Errorf("/preview disagrees with streamed tier (factor %d vs %d, max diff %g)", pf, res.PreviewFactor, diff)
	case firstPreview.Seconds() >= 0.7*ttfv.Seconds():
		return fmt.Errorf("first preview at %v is not a wide margin over full volume at %v (want < 70%%)", firstPreview, ttfv)
	}
	fmt.Println("progressive scenario OK")
	return nil
}

// printTrace renders one job's span tree as an indented waterfall: each
// line shows the span's offset from the trace's earliest start, its name
// nested under its parent, its duration and owning service. Orphan parents
// (e.g. the SDK's client span, which no server records) start new roots.
// Per-round compute spans collapse past a few examples to keep the output
// readable on long scans.
func printTrace(ctx context.Context, c *client.Client, id string) {
	tr, err := c.Trace(ctx, id)
	if err != nil {
		fmt.Printf("trace %s: %v\n", id, err)
		return
	}
	complete := "complete"
	if !tr.Complete {
		complete = "partial"
	}
	fmt.Printf("\n=== trace %s (job %s, %d spans, %s) ===\n", tr.TraceID, tr.Job, len(tr.Spans), complete)

	known := map[string]bool{}
	for _, s := range tr.Spans {
		known[s.SpanID] = true
	}
	children := map[string][]api.Span{}
	var roots []api.Span
	var base time.Time
	starts := map[string]time.Time{}
	for _, s := range tr.Spans {
		if ts, perr := time.Parse(time.RFC3339Nano, s.Start); perr == nil {
			starts[s.SpanID] = ts
			if base.IsZero() || ts.Before(base) {
				base = ts
			}
		}
		if s.ParentSpanID != "" && known[s.ParentSpanID] {
			children[s.ParentSpanID] = append(children[s.ParentSpanID], s)
		} else {
			roots = append(roots, s)
		}
	}
	order := func(spans []api.Span) {
		sort.Slice(spans, func(i, j int) bool {
			si, sj := starts[spans[i].SpanID], starts[spans[j].SpanID]
			if !si.Equal(sj) {
				return si.Before(sj)
			}
			return spans[i].Name < spans[j].Name
		})
	}
	order(roots)

	const maxRounds = 8
	var walk func(s api.Span, depth int)
	walk = func(s api.Span, depth int) {
		off := 0.0
		if ts, ok := starts[s.SpanID]; ok {
			off = ts.Sub(base).Seconds()
		}
		fmt.Printf("%9.3fs  %s%s  %.3fs  [%s]\n",
			off, strings.Repeat("   ", depth), s.Name, s.DurationSec, s.Service)
		kids := children[s.SpanID]
		order(kids)
		seen := map[string]int{}
		for _, ch := range kids {
			if strings.HasSuffix(ch.Name, ".round") {
				seen[ch.Name]++
				if seen[ch.Name] > maxRounds {
					continue
				}
			}
			walk(ch, depth+1)
		}
		elided := 0
		for _, n := range seen {
			if n > maxRounds {
				elided += n - maxRounds
			}
		}
		if elided > 0 {
			fmt.Printf("%9s  %s… %d more round spans elided\n", "", strings.Repeat("   ", depth+1), elided)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
}

// cancelProbe submits a job and cancels it immediately, checking that the
// service settles it quickly.
func cancelProbe(ctx context.Context, c *client.Client, nx int) error {
	spec := api.Spec{Phantom: "sphere", NX: nx, NP: 8 * nx, R: 2, C: 2, Priority: "low", Client: "probe"}
	v, err := c.Submit(ctx, spec)
	if err != nil {
		return fmt.Errorf("cancel probe submit: %w", err)
	}
	if err := c.Cancel(ctx, v.ID); err != nil {
		return fmt.Errorf("cancel probe delete: %w", err)
	}
	start := time.Now()
	probeCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	final, err := c.Await(probeCtx, v.ID, 5*time.Millisecond)
	if err != nil {
		var apiErr *api.Error
		if errors.As(err, &apiErr) && apiErr.Code == api.CodeNotFound {
			// The probe finished before the cancel arrived, which then
			// deleted the terminal record: also a settled state.
			fmt.Printf("cancel probe: job %s finished before cancel and was deleted\n", v.ID)
			return nil
		}
		return fmt.Errorf("cancel probe: job %s did not settle promptly: %w", v.ID, err)
	}
	fmt.Printf("cancel probe: job %s settled as %s in %v\n", v.ID, final.State, time.Since(start).Round(time.Millisecond))
	return nil
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func report(ctx context.Context, c *client.Client, lc loadConfig, results []result, wall time.Duration, retries int64, cancelErr error) error {
	var lats []time.Duration
	var failures, cacheHits, verified int
	var worstRMSE float64
	byClass := map[string]int{}
	classFails := map[string]int{}
	var maxLowWait float64
	for _, r := range results {
		if r.err != nil {
			failures++
			classFails[r.view.Priority]++
			fmt.Printf("FAIL %s (%s): %v\n", r.id, r.view.Priority, r.err)
			continue
		}
		byClass[r.view.Priority]++
		if r.view.Priority == "low" && r.view.WaitSec > maxLowWait {
			maxLowWait = r.view.WaitSec
		}
		lats = append(lats, r.latency)
		if r.view.CacheHit {
			cacheHits++
		}
		if r.view.Verified {
			verified++
			if r.view.RelRMSE > worstRMSE {
				worstRMSE = r.view.RelRMSE
			}
		}
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })

	fmt.Printf("\n=== service-level results ===\n")
	fmt.Printf("jobs:        %d submitted, %d ok, %d failed\n", len(results), len(lats), failures)
	fmt.Printf("wall time:   %v  (%.2f jobs/s)\n", wall.Round(time.Millisecond), float64(len(lats))/wall.Seconds())
	fmt.Printf("latency:     p50 %v  p90 %v  p99 %v  max %v\n",
		percentile(lats, 0.50).Round(time.Millisecond), percentile(lats, 0.90).Round(time.Millisecond),
		percentile(lats, 0.99).Round(time.Millisecond), percentile(lats, 1.0).Round(time.Millisecond))
	fmt.Printf("backpressure: %d retries after 503/429\n", retries)
	fmt.Printf("cache hits:  %d/%d jobs\n", cacheHits, len(results))
	fmt.Printf("verified:    %d jobs vs serial FDK, worst relative RMSE %.2e (bound 1e-5)\n", verified, worstRMSE)

	if mt, err := c.Metrics(ctx); err == nil {
		fmt.Printf("server:      %d workers, %d runs + %d cache hits, cache %d entries %.1f/%.1f MiB, PFS %.1f MB written\n",
			mt.Workers, mt.Completed, mt.CacheHits, mt.Cache.Entries, float64(mt.Cache.Bytes)/(1<<20),
			float64(mt.Cache.MaxBytes)/(1<<20), mt.PFSWriteMB)
		fmt.Printf("admission:   %d admitted, rejected: %d full, %d cost, %d bytes, %d quota (cost scale %.3g)\n",
			mt.Admission.Admitted, mt.Admission.RejectedFull, mt.Admission.RejectedCost,
			mt.Admission.RejectedBytes, mt.Admission.RejectedQuota, mt.CostScale)
		for _, class := range []string{"high", "normal", "low"} {
			if ws, ok := mt.WaitSec[class]; ok {
				fmt.Printf("wait[%s]:  p50 %.3fs  p90 %.3fs  p99 %.3fs  (%d jobs)\n",
					class, ws.P50, ws.P90, ws.P99, ws.Count)
			}
		}
	}

	if lc.trace {
		// Sample one real run (cache hits have trivial two-span traces) and
		// show where its time went, end to end.
		for _, r := range results {
			if r.err == nil && !r.view.CacheHit {
				printTrace(ctx, c, r.id)
				break
			}
		}
	}

	if lc.mixed {
		fmt.Printf("fairness:    %d low / %d normal / %d high completed; worst low-priority wait %.2fs\n",
			byClass["low"], byClass["normal"], byClass["high"], maxLowWait)
		if classFails["low"] > 0 {
			return fmt.Errorf("starvation: %d low-priority jobs did not complete", classFails["low"])
		}
	}
	if cancelErr != nil {
		return cancelErr
	}
	if failures > 0 {
		return fmt.Errorf("%d jobs failed", failures)
	}
	if verified > 0 && worstRMSE > 1e-5 {
		return fmt.Errorf("verification exceeded bound: %.2e > 1e-5", worstRMSE)
	}
	return nil
}
