// Command ifdk-load replays a mixed medical/industrial reconstruction
// workload against an ifdkd server and reports service-level performance:
// throughput, submit→done latency percentiles, backpressure retries, cache
// hits and verification outcomes. With no -addr it spins up an in-process
// server first, making the full service path a one-command benchmark
// alongside the Fig. 7 / Table 4 harnesses:
//
//	ifdk-load -jobs 24 -clients 6 -workers 4
//	ifdk-load -addr http://localhost:8080 -jobs 50
//
// A fraction of the jobs are exact duplicates (exercising the result
// cache), a fraction request serial-reference verification, and one job is
// cancelled mid-flight to check teardown latency. The process exits
// non-zero if any job fails, any verified job exceeds the paper's 1e-5
// relative-RMSE bound, or the cancelled job does not settle promptly.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ifdk/internal/service"
)

type result struct {
	id      string
	view    service.View
	latency time.Duration
	retries int
	err     error
}

func main() {
	addr := flag.String("addr", "", "server base URL (empty = start an in-process server)")
	jobs := flag.Int("jobs", 24, "number of jobs to submit")
	clients := flag.Int("clients", 6, "concurrent submitting clients")
	nx := flag.Int("nx", 16, "volume voxels per side for every job")
	dupEvery := flag.Int("dup-every", 3, "every n-th job repeats an earlier spec (0 = never)")
	verifyEvery := flag.Int("verify-every", 4, "every n-th job verifies against the serial reference (0 = never)")
	workers := flag.Int("workers", 4, "worker pool size (in-process server only)")
	queueCap := flag.Int("queue", 8, "queue capacity (in-process server only)")
	timeout := flag.Duration("timeout", 5*time.Minute, "overall deadline")
	flag.Parse()

	if err := run(*addr, *jobs, *clients, *nx, *dupEvery, *verifyEvery, *workers, *queueCap, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "ifdk-load:", err)
		os.Exit(1)
	}
}

// specFor builds the i-th job of the mixed workload: alternating medical
// (Shepp–Logan head), industrial (machined block) and calibration (sphere)
// scans on varying grids, with periodic exact duplicates to exercise the
// result cache.
func specFor(i, nx, dupEvery, verifyEvery int) service.Spec {
	if dupEvery > 0 && i > 0 && i%dupEvery == 0 {
		// Repeat an earlier job's spec exactly; keep dupEvery so a
		// reference that is itself a dup slot resolves through the chain.
		return specFor(i/dupEvery-1, nx, dupEvery, verifyEvery)
	}
	phantoms := []string{"shepplogan", "industrial", "sphere"}
	grids := [][2]int{{2, 2}, {4, 2}, {2, 4}, {4, 1}}
	g := grids[i%len(grids)]
	s := service.Spec{
		Phantom: phantoms[i%len(phantoms)],
		NX:      nx,
		NP:      2*nx + 8*(i%3)*g[0]*g[1], // vary scan length, keep Np % R·C == 0
		R:       g[0],
		C:       g[1],
	}
	if verifyEvery > 0 && i%verifyEvery == 0 {
		s.Verify = true
	}
	return s
}

func run(addr string, jobs, clients, nx, dupEvery, verifyEvery, workers, queueCap int, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	if addr == "" {
		m := service.NewManager(service.Options{Workers: workers, QueueCap: queueCap})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: service.NewServer(m)}
		go srv.Serve(ln)
		defer func() {
			shutCtx, c := context.WithTimeout(context.Background(), 30*time.Second)
			defer c()
			srv.Shutdown(shutCtx)
			m.Shutdown(shutCtx)
		}()
		addr = "http://" + ln.Addr().String()
		fmt.Printf("in-process server on %s (%d workers, queue %d)\n", addr, workers, queueCap)
	}

	client := &http.Client{Timeout: 30 * time.Second}
	fmt.Printf("submitting %d jobs from %d clients (nx=%d, dup every %d, verify every %d)\n",
		jobs, clients, nx, dupEvery, verifyEvery)

	var (
		wg        sync.WaitGroup
		resMu     sync.Mutex
		results   []result
		retries   atomic.Int64
		jobIdx    atomic.Int64
		wallStart = time.Now()
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(jobIdx.Add(1)) - 1
				if i >= jobs {
					return
				}
				r := driveJob(ctx, client, addr, specFor(i, nx, dupEvery, verifyEvery))
				retries.Add(int64(r.retries))
				resMu.Lock()
				results = append(results, r)
				resMu.Unlock()
			}
		}()
	}

	// One extra job is cancelled mid-flight to measure teardown latency.
	cancelRes := make(chan error, 1)
	go func() { cancelRes <- cancelProbe(ctx, client, addr, nx) }()

	wg.Wait()
	wall := time.Since(wallStart)
	cancelErr := <-cancelRes

	return report(client, addr, results, wall, retries.Load(), cancelErr)
}

// driveJob submits one spec (retrying 503 backpressure with backoff) and
// polls it to a terminal state.
func driveJob(ctx context.Context, client *http.Client, addr string, spec service.Spec) result {
	body, _ := json.Marshal(spec)
	start := time.Now()
	var r result
	for {
		if err := ctx.Err(); err != nil {
			r.err = err
			return r
		}
		resp, err := client.Post(addr+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			r.err = err
			return r
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			resp.Body.Close()
			r.retries++
			time.Sleep(25 * time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
			r.err = fmt.Errorf("submit: HTTP %d", resp.StatusCode)
			resp.Body.Close()
			return r
		}
		err = json.NewDecoder(resp.Body).Decode(&r.view)
		resp.Body.Close()
		if err != nil {
			r.err = err
			return r
		}
		r.id = r.view.ID
		break
	}
	for !r.view.State.Terminal() {
		if err := ctx.Err(); err != nil {
			r.err = err
			return r
		}
		time.Sleep(10 * time.Millisecond)
		resp, err := client.Get(addr + "/v1/jobs/" + r.id)
		if err != nil {
			r.err = err
			return r
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			r.err = fmt.Errorf("poll %s: HTTP %d", r.id, resp.StatusCode)
			return r
		}
		err = json.NewDecoder(resp.Body).Decode(&r.view)
		resp.Body.Close()
		if err != nil {
			r.err = err
			return r
		}
	}
	r.latency = time.Since(start)
	if r.view.State != service.StateDone {
		r.err = fmt.Errorf("job %s ended %s: %s", r.id, r.view.State, r.view.Error)
	}
	return r
}

// cancelProbe submits a job and cancels it immediately, checking that the
// service settles it quickly.
func cancelProbe(ctx context.Context, client *http.Client, addr string, nx int) error {
	spec := service.Spec{Phantom: "sphere", NX: nx, NP: 8 * nx, R: 2, C: 2, Priority: "low"}
	body, _ := json.Marshal(spec)
	resp, err := client.Post(addr+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("cancel probe submit: %w", err)
	}
	var v service.View
	err = json.NewDecoder(resp.Body).Decode(&v)
	resp.Body.Close()
	if err != nil || v.ID == "" {
		return fmt.Errorf("cancel probe submit: %v (HTTP %d)", err, resp.StatusCode)
	}
	req, _ := http.NewRequestWithContext(ctx, http.MethodDelete, addr+"/v1/jobs/"+v.ID, nil)
	dresp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("cancel probe delete: %w", err)
	}
	dresp.Body.Close()
	start := time.Now()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := client.Get(addr + "/v1/jobs/" + v.ID)
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusNotFound {
			// The probe finished before the DELETE arrived, which then
			// removed the terminal record: also a settled state.
			resp.Body.Close()
			fmt.Printf("cancel probe: job %s finished before cancel and was deleted\n", v.ID)
			return nil
		}
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("cancel probe poll: %w", err)
		}
		if v.State.Terminal() {
			fmt.Printf("cancel probe: job %s settled as %s in %v\n", v.ID, v.State, time.Since(start).Round(time.Millisecond))
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cancel probe: job %s still %s after 10s", v.ID, v.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func report(client *http.Client, addr string, results []result, wall time.Duration, retries int64, cancelErr error) error {
	var lats []time.Duration
	var failures, cacheHits, verified int
	var worstRMSE float64
	for _, r := range results {
		if r.err != nil {
			failures++
			fmt.Printf("FAIL %s: %v\n", r.id, r.err)
			continue
		}
		lats = append(lats, r.latency)
		if r.view.CacheHit {
			cacheHits++
		}
		if r.view.Verified {
			verified++
			if r.view.RelRMSE > worstRMSE {
				worstRMSE = r.view.RelRMSE
			}
		}
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })

	fmt.Printf("\n=== service-level results ===\n")
	fmt.Printf("jobs:        %d submitted, %d ok, %d failed\n", len(results), len(lats), failures)
	fmt.Printf("wall time:   %v  (%.2f jobs/s)\n", wall.Round(time.Millisecond), float64(len(lats))/wall.Seconds())
	fmt.Printf("latency:     p50 %v  p90 %v  p99 %v  max %v\n",
		percentile(lats, 0.50).Round(time.Millisecond), percentile(lats, 0.90).Round(time.Millisecond),
		percentile(lats, 0.99).Round(time.Millisecond), percentile(lats, 1.0).Round(time.Millisecond))
	fmt.Printf("backpressure: %d retries after 503\n", retries)
	fmt.Printf("cache hits:  %d/%d jobs\n", cacheHits, len(results))
	fmt.Printf("verified:    %d jobs vs serial FDK, worst relative RMSE %.2e (bound 1e-5)\n", verified, worstRMSE)

	if resp, err := client.Get(addr + "/v1/metrics"); err == nil {
		var mt service.Metrics
		if json.NewDecoder(resp.Body).Decode(&mt) == nil {
			fmt.Printf("server:      %d workers, cache %d entries %.1f/%.1f MiB (%d hits, %d misses), PFS %.1f MB written\n",
				mt.Workers, mt.Cache.Entries, float64(mt.Cache.Bytes)/(1<<20),
				float64(mt.Cache.MaxBytes)/(1<<20), mt.Cache.Hits, mt.Cache.Misses, mt.PFSWriteMB)
		}
		resp.Body.Close()
	}

	if cancelErr != nil {
		return cancelErr
	}
	if failures > 0 {
		return fmt.Errorf("%d jobs failed", failures)
	}
	if verified > 0 && worstRMSE > 1e-5 {
		return fmt.Errorf("verification exceeded bound: %.2e > 1e-5", worstRMSE)
	}
	return nil
}
