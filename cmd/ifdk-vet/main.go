// Command ifdk-vet is the repo's multichecker: it runs the custom
// analyzers in internal/analysis/... over the given packages and exits
// non-zero if any invariant the compiler cannot see is violated — the
// engine pool ownership contract (poolcheck), the //ifdk:hotpath
// allocation gate (hotpathcheck), the //ifdk:journal fsync-before-ack
// contract (journalcheck), structured-logging discipline (slogcheck),
// cancellation threading (ctxcheck) and obs metric registry discipline
// (metricscheck).
//
// Usage:
//
//	go run ./cmd/ifdk-vet ./...
//	go run ./cmd/ifdk-vet -checks poolcheck,hotpathcheck ./internal/ct/...
//
// CI runs the full set over ./... as a required step.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ifdk/internal/analysis"
	"ifdk/internal/analysis/ctxcheck"
	"ifdk/internal/analysis/hotpathcheck"
	"ifdk/internal/analysis/journalcheck"
	"ifdk/internal/analysis/metricscheck"
	"ifdk/internal/analysis/poolcheck"
	"ifdk/internal/analysis/slogcheck"
)

var all = []*analysis.Analyzer{
	poolcheck.Analyzer,
	hotpathcheck.Analyzer,
	journalcheck.Analyzer,
	slogcheck.Analyzer,
	ctxcheck.Analyzer,
	metricscheck.Analyzer,
}

func main() {
	checks := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ifdk-vet [-checks a,b] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the iFDK invariant analyzers (default pattern ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected := all
	if *checks != "" {
		byName := make(map[string]*analysis.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*checks, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "ifdk-vet: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ifdk-vet:", err)
		os.Exit(2)
	}
	loader, err := analysis.NewLoader(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ifdk-vet:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ifdk-vet:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(selected, pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ifdk-vet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ifdk-vet: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
