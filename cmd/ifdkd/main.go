// Command ifdkd is the iFDK reconstruction daemon: a long-lived HTTP
// service that schedules many concurrent distributed reconstructions on a
// bounded worker pool, deduplicates identical requests through a result
// cache, and serves volume slices as PNG. Admission is cost-aware: each
// job's runtime and working set are estimated from the paper's performance
// model (Sec. 4.2) at submit time and admitted against a queued-work budget
// and per-client rate quotas, with priority aging so low-priority jobs
// cannot starve.
//
// Delivery is incremental, matching the paper's "instant" claim: every job
// publishes queued/started/round/slice/done lifecycle events over SSE, and
// its output slices stream out as each row group's epilogue lands them on
// the PFS — long before the job is terminal.
//
//	ifdkd -addr :8080 -workers 4 -queue 16 -cache-mb 1024 \
//	      -max-queued-sec 30 -quota-rps 5 -aging 15s -event-log 1024 \
//	      -log-json -log-level info -debug-addr localhost:6060
//
// Quickstart:
//
//	curl -s -X POST localhost:8080/v1/jobs \
//	     -d '{"phantom":"shepplogan","nx":32,"r":2,"c":2,"verify":true,"client":"alice"}'
//	curl -s localhost:8080/v1/jobs/j00000001
//	curl -sN localhost:8080/v1/jobs/j00000001/events          # SSE progress
//	curl -sN localhost:8080/v1/jobs/j00000001/stream -o vol.mime  # live slices
//	curl -s localhost:8080/v1/jobs/j00000001/slice/16 > slice.png
//	curl -s localhost:8080/v1/metrics
//
// SIGINT/SIGTERM triggers a graceful shutdown: admission stops, queued and
// running jobs drain (up to -drain), then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	_ "net/http/pprof"

	"ifdk/internal/ct/kernels"
	"ifdk/internal/hpc/pfs"
	"ifdk/internal/obs"
	"ifdk/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 4, "concurrent reconstructions")
	queueCap := flag.Int("queue", 16, "admission queue capacity, jobs")
	maxQueuedSec := flag.Float64("max-queued-sec", 0,
		"admission cost budget: max estimated seconds of queued work (0 = unlimited)")
	maxInflightMB := flag.Int64("max-inflight-mb", 0,
		"admission byte budget: max estimated in-flight working set in MiB (0 = unlimited)")
	quotaRPS := flag.Float64("quota-rps", 0,
		"per-client submission rate limit in requests/s (0 = no quotas)")
	aging := flag.Duration("aging", 15*time.Second,
		"queued-job priority aging: wait per one-class priority boost (0 disables)")
	cacheMB := flag.Int64("cache-mb", 1024, "result cache budget in MiB (<= 0 disables)")
	kernelMode := flag.String("kernels", "auto",
		"row-kernel implementation: fast (vectorizable), ref (scalar reference escape hatch), auto (= fast)")
	filterBatch := flag.Duration("filter-batch", 200*time.Microsecond,
		"coalescing window for cross-job shared filter sweeps (0 disables batching)")
	previewWorkers := flag.Int("preview-workers", 0,
		"concurrent workers per preview-tier build (0 = default; previews of progressive jobs run before the full pass)")
	eventLog := flag.Int("event-log", 0,
		"retained events per job for /events resume and /stream replay (0 = default 1024)")
	node := flag.String("node", "",
		"node id prefixed to job ids; give every backend behind an ifdk-router a distinct one")
	journalDir := flag.String("journal-dir", "",
		"write-ahead job journal directory; accepted jobs survive restarts (empty disables durability)")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
	abci := flag.Bool("abci", false, "model the paper's ABCI GPFS storage instead of defaults")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON records instead of text")
	logLevel := flag.String("log-level", "info", "minimum log level (debug, info, warn, error)")
	debugAddr := flag.String("debug-addr", "", "optional debug listen address serving net/http/pprof (off when empty)")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "ifdkd: bad -log-level %q (want debug, info, warn or error)\n", *logLevel)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, obs.NewLoggerOptions{JSON: *logJSON, Level: level}, "ifdkd", *node)

	if err := kernels.SetMode(*kernelMode); err != nil {
		fmt.Fprintf(os.Stderr, "ifdkd: bad -kernels %q (want fast, ref or auto)\n", *kernelMode)
		os.Exit(2)
	}

	opt := service.Options{
		Workers:           *workers,
		QueueCap:          *queueCap,
		MaxQueuedSec:      *maxQueuedSec,
		MaxInflightBytes:  *maxInflightMB << 20,
		QuotaRPS:          *quotaRPS,
		EventLogCap:       *eventLog,
		NodeID:            *node,
		JournalDir:        *journalDir,
		Logger:            logger,
		FilterBatchWindow: *filterBatch,
		PreviewWorkers:    *previewWorkers,
	}
	if *aging <= 0 {
		opt.Aging = -1 // disabled (0 in Options means "default")
	} else {
		opt.Aging = *aging
	}
	opt.CacheBytes = *cacheMB << 20
	if *cacheMB <= 0 {
		opt.CacheBytes = -1 // explicit off; 0 would mean "default"
	}
	if *abci {
		opt.PFS = pfs.ABCIConfig()
	}

	if err := run(*addr, *debugAddr, opt, *drain, logger); err != nil {
		fmt.Fprintln(os.Stderr, "ifdkd:", err)
		os.Exit(1)
	}
}

func run(addr, debugAddr string, opt service.Options, drain time.Duration, logger *slog.Logger) error {
	m, err := service.OpenManager(opt)
	if err != nil {
		return err
	}
	srv := &http.Server{Addr: addr, Handler: service.NewServer(m)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if debugAddr != "" {
		// pprof registers on http.DefaultServeMux via its import side effect;
		// serve it on a separate listener so profiling stays off the API port.
		go func() {
			logger.Info("pprof debug server listening", "addr", debugAddr)
			if err := http.ListenAndServe(debugAddr, nil); err != nil {
				logger.Error("pprof debug server failed", "err", err)
			}
		}()
	}

	agingDesc := "off"
	if opt.Aging > 0 {
		agingDesc = opt.Aging.String()
	}
	errc := make(chan error, 1)
	go func() {
		logger.Info("serving",
			"addr", addr, "workers", opt.Workers, "queue", opt.QueueCap,
			"budget_sec", opt.MaxQueuedSec, "budget_mib", opt.MaxInflightBytes>>20,
			"quota_rps", opt.QuotaRPS, "aging", agingDesc,
			"filter_batch", opt.FilterBatchWindow.String(), "kernels", kernels.Mode())
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Info("shutting down", "drain_budget", drain.String())
	shutCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		logger.Warn("http shutdown", "err", err)
	}
	if err := m.Shutdown(shutCtx); err != nil {
		logger.Warn("manager shutdown", "err", err)
	}
	logger.Info("bye")
	return nil
}
