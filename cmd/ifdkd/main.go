// Command ifdkd is the iFDK reconstruction daemon: a long-lived HTTP
// service that schedules many concurrent distributed reconstructions on a
// bounded worker pool, deduplicates identical requests through a result
// cache, and serves volume slices as PNG.
//
//	ifdkd -addr :8080 -workers 4 -queue 16 -cache-mb 1024
//
// Quickstart:
//
//	curl -s -X POST localhost:8080/v1/jobs \
//	     -d '{"phantom":"shepplogan","nx":32,"r":2,"c":2,"verify":true}'
//	curl -s localhost:8080/v1/jobs/j00000001
//	curl -s localhost:8080/v1/jobs/j00000001/slice/16 > slice.png
//	curl -s localhost:8080/v1/metrics
//
// SIGINT/SIGTERM triggers a graceful shutdown: admission stops, queued and
// running jobs drain (up to -drain), then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ifdk/internal/hpc/pfs"
	"ifdk/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 4, "concurrent reconstructions")
	queueCap := flag.Int("queue", 16, "admission queue capacity")
	cacheMB := flag.Int64("cache-mb", 1024, "result cache budget in MiB (<= 0 disables)")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
	abci := flag.Bool("abci", false, "model the paper's ABCI GPFS storage instead of defaults")
	flag.Parse()

	if err := run(*addr, *workers, *queueCap, *cacheMB, *drain, *abci); err != nil {
		fmt.Fprintln(os.Stderr, "ifdkd:", err)
		os.Exit(1)
	}
}

func run(addr string, workers, queueCap int, cacheMB int64, drain time.Duration, abci bool) error {
	cacheBytes := cacheMB << 20
	if cacheMB <= 0 {
		cacheBytes = -1 // explicit off; 0 would mean "default"
	}
	opt := service.Options{Workers: workers, QueueCap: queueCap, CacheBytes: cacheBytes}
	if abci {
		opt.PFS = pfs.ABCIConfig()
	}
	m := service.NewManager(opt)
	srv := &http.Server{Addr: addr, Handler: service.NewServer(m)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("ifdkd: serving on %s (%d workers, queue %d, cache %d MiB)",
			addr, workers, queueCap, cacheMB)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("ifdkd: shutting down (drain budget %v)", drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("ifdkd: http shutdown: %v", err)
	}
	if err := m.Shutdown(shutCtx); err != nil {
		log.Printf("ifdkd: manager shutdown: %v", err)
	}
	log.Print("ifdkd: bye")
	return nil
}
