module ifdk

go 1.24
