// Package ifdk's root benchmarks regenerate every table and figure of the
// paper at benchmark-friendly scale (see DESIGN.md's experiment index):
//
//	BenchmarkTable4*  — back-projection kernel GUPS (Table 4, E2/E3)
//	BenchmarkTable5   — Tcompute breakdown and δ (Table 5, E9)
//	BenchmarkFig5*    — strong/weak scaling of the 4K and 8K problems (E4–E7)
//	BenchmarkFig6     — end-to-end GUPS (E8)
//	BenchmarkFig7     — real distributed reduction demo (E10)
//
// plus real-execution benchmarks of the two pipeline stages and the
// end-to-end framework. Full-size renders come from cmd/ifdk-bench.
package ifdk_test

import (
	"testing"

	"ifdk/internal/bench"
	"ifdk/internal/core"
	"ifdk/internal/ct/backproject"
	"ifdk/internal/ct/fdk"
	"ifdk/internal/ct/filter"
	"ifdk/internal/ct/geometry"
	"ifdk/internal/ct/phantom"
	"ifdk/internal/ct/projector"
	"ifdk/internal/gpusim"
	"ifdk/internal/hpc/pfs"
	"ifdk/internal/perfmodel"
	"ifdk/internal/volume"
)

func quickEst() gpusim.EstimateConfig {
	return gpusim.EstimateConfig{SampleWarps: 64, BatchSamples: 1}
}

// BenchmarkTable4 regenerates the whole kernel-performance table.
func BenchmarkTable4(b *testing.B) {
	dev := gpusim.TeslaV100()
	for i := 0; i < b.N; i++ {
		rows := bench.Table4(dev, quickEst())
		if len(rows) != 15 {
			b.Fatal("table 4 incomplete")
		}
	}
}

// BenchmarkTable4Kernels estimates each kernel on the paper's flagship
// low-α problem (1k³ → 1k³), reporting modelled GUPS.
func BenchmarkTable4Kernels(b *testing.B) {
	dev := gpusim.TeslaV100()
	pr := geometry.Problem{Nu: 1024, Nv: 1024, Np: 1024, Nx: 1024, Ny: 1024, Nz: 1024}
	for _, k := range gpusim.Kernels {
		b.Run(k.String(), func(b *testing.B) {
			var gups float64
			for i := 0; i < b.N; i++ {
				rep := gpusim.Estimate(dev, pr, k, quickEst())
				gups = rep.GUPS
			}
			b.ReportMetric(gups, "modelGUPS")
		})
	}
}

func BenchmarkTable5(b *testing.B) {
	mb := perfmodel.ABCI()
	for i := 0; i < b.N; i++ {
		points, err := bench.Table5(mb)
		if err != nil {
			b.Fatal(err)
		}
		if len(points) != 8 {
			b.Fatal("table 5 incomplete")
		}
	}
}

func benchFig5(b *testing.B, cfg bench.Fig5Config) {
	mb := perfmodel.ABCI()
	var last float64
	for i := 0; i < b.N; i++ {
		points, err := bench.RunFig5(cfg, mb)
		if err != nil {
			b.Fatal(err)
		}
		last = points[len(points)-1].Res.SimTotal
	}
	b.ReportMetric(last, "sec@maxGPUs")
}

func BenchmarkFig5aStrong4K(b *testing.B) { benchFig5(b, bench.Fig5a()) }
func BenchmarkFig5bStrong8K(b *testing.B) { benchFig5(b, bench.Fig5b()) }
func BenchmarkFig5cWeak4K(b *testing.B)   { benchFig5(b, bench.Fig5c()) }
func BenchmarkFig5dWeak8K(b *testing.B)   { benchFig5(b, bench.Fig5d()) }

func BenchmarkFig6(b *testing.B) {
	mb := perfmodel.ABCI()
	var gups float64
	for i := 0; i < b.N; i++ {
		series, err := bench.Fig6(mb)
		if err != nil {
			b.Fatal(err)
		}
		pts := series[1].Points
		gups = pts[len(pts)-1].Res.GUPS
	}
	b.ReportMetric(gups, "4K-GUPS@2048")
}

// BenchmarkFig7 runs the real 16-rank distributed reduction demo.
func BenchmarkFig7(b *testing.B) {
	mb := perfmodel.ABCI()
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig7(16, mb)
		if err != nil {
			b.Fatal(err)
		}
		if res.RMSEvsSerial > 1e-5 {
			b.Fatalf("fig7 verification failed: %g", res.RMSEvsSerial)
		}
	}
}

// --- Real-execution stage benchmarks (the micro-benchmarks of E13).

// BenchmarkFilteringStage measures TH_flt on this CPU through the pooled
// hot path: allocs/op must be zero in steady state.
func BenchmarkFilteringStage(b *testing.B) {
	g := geometry.Default(512, 16, 90, 32, 32, 32)
	flt, err := filter.New(g, filter.RamLak)
	if err != nil {
		b.Fatal(err)
	}
	img := volume.NewImage(g.Nu, g.Nv)
	q := volume.NewImage(g.Nu, g.Nv)
	for n := range img.Data {
		img.Data[n] = float32(n % 101)
	}
	if err := flt.ApplyInto(img, q); err != nil { // warm the scratch pools
		b.Fatal(err)
	}
	b.SetBytes(int64(4 * g.Nu * g.Nv))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := flt.ApplyInto(img, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFilterRFFT compares the float32 half-spectrum hot path against
// the complex128 reference on one projection of the default geometry.
func BenchmarkFilterRFFT(b *testing.B) {
	g := geometry.Default(512, 16, 90, 32, 32, 32)
	flt, err := filter.New(g, filter.RamLak)
	if err != nil {
		b.Fatal(err)
	}
	img := volume.NewImage(g.Nu, g.Nv)
	q := volume.NewImage(g.Nu, g.Nv)
	for n := range img.Data {
		img.Data[n] = float32(n % 101)
	}
	b.Run("complex128", func(b *testing.B) {
		b.SetBytes(int64(4 * g.Nu * g.Nv))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := flt.ApplyRef(img); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rfft", func(b *testing.B) {
		b.SetBytes(int64(4 * g.Nu * g.Nv))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := flt.ApplyInto(img, q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBackprojection compares the standard and proposed algorithms on
// the real CPU (the E3 speedup, CPU edition).
func BenchmarkBackprojection(b *testing.B) {
	g := geometry.Default(128, 128, 32, 64, 64, 64)
	task := backproject.Task{Mats: geometry.ProjectionMatrices(g)}
	for s := 0; s < g.Np; s++ {
		img := volume.NewImage(g.Nu, g.Nv)
		for n := range img.Data {
			img.Data[n] = float32((n*7 + s) % 31)
		}
		task.Proj = append(task.Proj, img)
	}
	updates := float64(g.Nx) * float64(g.Ny) * float64(g.Nz) * float64(g.Np)
	b.Run("standard", func(b *testing.B) {
		vol := volume.New(g.Nx, g.Ny, g.Nz, volume.IMajor)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := backproject.Standard(task, vol, backproject.Options{}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(updates/1e6/b.Elapsed().Seconds()*float64(b.N), "MUPS")
	})
	b.Run("proposed", func(b *testing.B) {
		vol := volume.New(g.Nx, g.Ny, g.Nz, volume.KMajor)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := backproject.Proposed(task, vol, backproject.Options{}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(updates/1e6/b.Elapsed().Seconds()*float64(b.N), "MUPS")
	})
}

// BenchmarkEndToEnd runs the complete framework (projection staging
// excluded) on a 2x2 grid.
func BenchmarkEndToEnd(b *testing.B) {
	g := geometry.Default(64, 64, 32, 32, 32, 32)
	ph := phantom.SheppLogan3D(g.FOVRadius() * 0.9)
	proj := projector.AnalyticAll(ph, g, 0)
	store := pfs.New(pfs.Config{})
	if err := core.StageProjections(store, "in", proj); err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{R: 2, C: 2, Geometry: g, InputPrefix: "in"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(cfg, store); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSerialReference is the single-node pipeline for comparison.
func BenchmarkSerialReference(b *testing.B) {
	g := geometry.Default(64, 64, 32, 32, 32, 32)
	ph := phantom.SheppLogan3D(g.FOVRadius() * 0.9)
	proj := projector.AnalyticAll(ph, g, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fdk.Reconstruct(g, proj, fdk.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
