// Industrial inspection example: the paper motivates high-resolution CT
// with non-destructive testing and defect inspection (Secs. 1 and 6.1).
// This example scans a dense machined part containing three internal void
// defects and a slag inclusion, reconstructs it, and locates the defects
// automatically by thresholding the interior density.
package main

import (
	"fmt"
	"log"
	"os"

	"ifdk/internal/ct/fdk"
	"ifdk/internal/ct/geometry"
	"ifdk/internal/ct/phantom"
	"ifdk/internal/ct/projector"
)

// defect is one flagged voxel.
type defect struct {
	i, j, k int
	value   float32
}

func main() {
	g := geometry.Default(160, 160, 180, 80, 80, 80)
	part := phantom.IndustrialBlock(g.FOVRadius() * 0.9)

	fmt.Println("scanning the part (180 views)...")
	proj := projector.AnalyticAll(part, g, 0)

	fmt.Println("reconstructing 80^3 volume...")
	vol, err := fdk.Reconstruct(g, proj, fdk.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// Defect detection: walk the part interior (nominal body density 2.0)
	// and flag voxels far from nominal. Voids read low, inclusions high.
	var voids, inclusions []defect
	const nominal = 2.0
	for k := 8; k < g.Nz-8; k++ {
		for j := 8; j < g.Ny-8; j++ {
			for i := 8; i < g.Nx-8; i++ {
				x, y, z := g.VoxelCenter(float64(i), float64(j), float64(k))
				if !insideBody(part, x, y, z) {
					continue
				}
				got := vol.At(i, j, k)
				switch {
				case got < nominal-1.0:
					voids = append(voids, defect{i, j, k, got})
				case got > nominal+1.0:
					inclusions = append(inclusions, defect{i, j, k, got})
				}
			}
		}
	}
	fmt.Printf("flagged %d void voxels and %d inclusion voxels\n", len(voids), len(inclusions))
	if len(voids) == 0 {
		fmt.Println("WARNING: no voids found — the part would pass inspection incorrectly!")
	} else {
		c := centroid(voids)
		fmt.Printf("void centroid near voxel (%d, %d, %d)\n", c[0], c[1], c[2])
	}
	if len(inclusions) > 0 {
		c := centroid(inclusions)
		fmt.Printf("inclusion centroid near voxel (%d, %d, %d)\n", c[0], c[1], c[2])
	}

	// Render the slice through the first void for the inspection report.
	f, err := os.Create("industrial_slice.png")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	k := g.Nz/2 + g.Nz/8 // passes near the first void (z ≈ +0.2·r)
	if err := vol.SliceZ(k).WritePNG(f, -0.2, 2.4); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote industrial_slice.png")
}

// insideBody reports whether the point is inside the part's outer shell
// (first ellipsoid, minus the bore) with a safety margin, so detection only
// judges interior voxels whose nominal density is the body's.
func insideBody(p phantom.Phantom, x, y, z float64) bool {
	body := p.Ellipsoids[0]
	dx := x / (body.A * 0.85)
	dy := y / (body.B * 0.85)
	dz := z / (body.C * 0.85)
	if dx*dx+dy*dy+dz*dz > 1 {
		return false
	}
	// Exclude the intentional centre bore (second ellipsoid, negative).
	bore := p.Ellipsoids[1]
	bx := x / (bore.A * 1.3)
	by := y / (bore.B * 1.3)
	return bx*bx+by*by > 1
}

func centroid(ds []defect) [3]int {
	var si, sj, sk int
	for _, d := range ds {
		si += d.i
		sj += d.j
		sk += d.k
	}
	n := len(ds)
	return [3]int{si / n, sj / n, sk / n}
}
