// Example client demonstrates the pkg/client Go SDK against an ifdkd
// server (or an ifdk-router fronting a fleet — the SDK cannot tell the
// difference): submit a reconstruction, follow its lifecycle over SSE with
// automatic reconnect, and reassemble the live multipart slice stream into
// a full volume, all through the versioned pkg/api contract.
//
// With -progressive the job is submitted at quality=progressive: the
// stream opens with a decimated preview volume (coarse slices tagged
// X-Preview-Factor) that renders immediately, then refines to the full
// resolution under the same job ID — the coarse-to-fine serving path.
//
//	go run ./examples/client                      # spins up an in-process server
//	go run ./examples/client -addr http://localhost:8080
//	go run ./examples/client -gzip -nx 48
//	go run ./examples/client -progressive -nx 64
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"ifdk/internal/service"
	"ifdk/pkg/api"
	"ifdk/pkg/client"
)

func main() {
	addr := flag.String("addr", "", "ifdkd or ifdk-router base URL (empty = start an in-process server)")
	phantom := flag.String("phantom", "shepplogan", "phantom to scan: shepplogan | sphere | industrial")
	nx := flag.Int("nx", 32, "output voxels per side")
	gzip := flag.Bool("gzip", false, "negotiate per-part gzip slice encoding on the stream")
	prog := flag.Bool("progressive", false, "request coarse-to-fine delivery: preview tier first, then full resolution")
	flag.Parse()
	if err := run(*addr, *phantom, *nx, *gzip, *prog); err != nil {
		fmt.Fprintln(os.Stderr, "client example:", err)
		os.Exit(1)
	}
}

func run(addr, phantom string, nx int, gz, prog bool) error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	if addr == "" {
		m := service.NewManager(service.Options{Workers: 2})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: service.NewServer(m)}
		go srv.Serve(ln)
		defer func() {
			shutCtx, c := context.WithTimeout(context.Background(), 30*time.Second)
			defer c()
			srv.Shutdown(shutCtx)
			m.Shutdown(shutCtx)
		}()
		addr = "http://" + ln.Addr().String()
		fmt.Println("in-process server on", addr)
	}

	opts := []client.Option{}
	if gz {
		opts = append(opts, client.WithGzip())
	}
	c := client.New(addr, opts...)

	// 1. Submit. The SDK retries transient saturation (queue_full,
	// quota_exhausted, ...) with jittered backoff; hard errors surface as
	// *api.Error with a stable code.
	spec := api.Spec{Phantom: phantom, NX: nx, Verify: true, Client: "example"}
	if prog {
		spec.Quality = api.QualityProgressive
	}
	v, err := c.Submit(ctx, spec)
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	fmt.Printf("submitted %s (state %s, est %.3f model-sec, ~%d MiB working set)\n",
		v.ID, v.State, v.EstRunSec, v.EstBytes>>20)
	if v.CacheHit {
		fmt.Println("cache hit: an identical reconstruction was already done")
	}

	// 2. Watch the lifecycle over SSE. Watch survives dropped connections
	// by resuming with Last-Event-ID, so the callback sees every event
	// exactly once, in order.
	watchDone := make(chan error, 1)
	go func() {
		state, err := c.Watch(ctx, v.ID, func(e api.Event) error {
			switch e.Type {
			case api.EventStarted:
				fmt.Println("event: started")
			case api.EventRound:
				fmt.Printf("event: round %d/%d\r", e.Done, e.Total)
			case api.EventSlice:
				if e.Written == 1 {
					fmt.Printf("\nevent: first slice (z=%d) durable\n", e.Z)
				}
			}
			return nil
		})
		if err == nil {
			fmt.Println("watch: terminal state", state)
		}
		watchDone <- err
	}()

	// 3. Stream the slices live and reassemble the volume. The stream
	// starts mid-run: early slices arrive while later ones are still being
	// reconstructed. For a progressive job the preview tier's coarse slices
	// arrive first and reassemble into res.Preview; the full-resolution
	// slices that follow refine it into res.Volume.
	start := time.Now()
	var firstSlice, firstPreview time.Duration
	res, err := c.StreamProgressive(ctx, v.ID, client.StreamHooks{
		OnPreview: func(z, total, factor int) {
			if firstPreview == 0 {
				firstPreview = time.Since(start)
				fmt.Printf("stream: preview tier arriving (factor %d, %d coarse slices)\n", factor, total)
			}
		},
		OnSlice: func(z, total int) {
			if firstSlice == 0 {
				firstSlice = time.Since(start)
			}
		},
	})
	if err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	if err := <-watchDone; err != nil {
		return fmt.Errorf("watch: %w", err)
	}
	if res.Final.State != api.StateDone {
		return fmt.Errorf("job ended %s: %s", res.Final.State, res.Final.Error)
	}

	vol := res.Volume
	s := vol.Summarize()
	fmt.Printf("volume: %dx%dx%d, voxels in [%.4f, %.4f], mean %.4f\n",
		vol.Nx, vol.Ny, vol.Nz, s.Min, s.Max, s.Mean)
	if res.Preview != nil {
		fmt.Printf("preview: %dx%dx%d at factor %d, first coarse slice at %v (%.0f%% of full volume)\n",
			res.Preview.Nx, res.Preview.Ny, res.Preview.Nz, res.PreviewFactor,
			firstPreview.Round(time.Millisecond),
			100*firstPreview.Seconds()/time.Since(start).Seconds())
	}
	fmt.Printf("delivery: first slice at %v, full volume at %v (%d slices, %.1f KiB on the wire)\n",
		firstSlice.Round(time.Millisecond), time.Since(start).Round(time.Millisecond),
		res.Slices, float64(res.WireBytes)/1024)
	if gz {
		fmt.Printf("gzip: %.1f KiB raw -> %.1f KiB wire\n",
			float64(res.RawBytes)/1024, float64(res.WireBytes)/1024)
	}
	if res.Final.Verified {
		fmt.Printf("verified against serial FDK: relative RMSE %.2e (paper bound 1e-5)\n", res.Final.RelRMSE)
	}
	return nil
}
