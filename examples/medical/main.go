// Medical imaging example: reconstruct the 3-D Shepp–Logan head phantom —
// the standard test object of CT research and the dataset the paper itself
// evaluates with (Sec. 5.1) — from noisy projections, and compare ramp
// windows: the unapodized Ram-Lak filter is sharpest but noisiest, while
// the Hann window trades resolution for noise suppression, which is why
// clinical low-dose protocols apodize.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"

	"ifdk/internal/ct/fdk"
	"ifdk/internal/ct/filter"
	"ifdk/internal/ct/geometry"
	"ifdk/internal/ct/phantom"
	"ifdk/internal/ct/projector"
	"ifdk/internal/volume"
)

func main() {
	// A head scan: 160 views of a 128² flat-panel detector, 64³ output.
	g := geometry.Default(128, 128, 160, 64, 64, 64)
	head := phantom.SheppLogan3D(g.FOVRadius() * 0.9)

	fmt.Println("scanning the Shepp-Logan head phantom...")
	clean := projector.AnalyticAll(head, g, 0)

	// A low-dose acquisition: Poisson photon statistics at 5·10⁴ photons
	// per detector pixel.
	rng := rand.New(rand.NewSource(7))
	noisy := make([]*volume.Image, len(clean))
	for s, img := range clean {
		noisy[s] = img.Clone()
		projector.AddPoissonNoise(noisy[s], 5e4, rng)
	}

	truth := head.Voxelize(g)
	for _, win := range []filter.Window{filter.RamLak, filter.Hann} {
		vol, err := fdk.Reconstruct(g, noisy, fdk.Config{Window: win})
		if err != nil {
			log.Fatal(err)
		}
		rmse, err := volume.RMSE(truth, vol)
		if err != nil {
			log.Fatal(err)
		}
		// Noise measured in the homogeneous brain region around the
		// centre (density 0.2 in the modified phantom).
		noise := regionStd(vol, 28, 36)
		fmt.Printf("  window %-12s RMSE vs truth %.4f, brain-region noise σ %.4f\n",
			win, rmse, noise)

		name := fmt.Sprintf("medical_%s.png", win)
		f, err := os.Create(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := vol.SliceZ(32).WritePNG(f, -0.05, 0.45); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("  wrote %s\n", name)
	}
	fmt.Println("Hann should show lower noise (and slightly softer edges) than Ram-Lak.")
}

// regionStd computes the standard deviation over the central cube
// [lo, hi)³ — a homogeneous region of the phantom.
func regionStd(vol *volume.Volume, lo, hi int) float64 {
	var sum, sumSq float64
	n := 0
	for k := lo; k < hi; k++ {
		for j := lo; j < hi; j++ {
			for i := lo; i < hi; i++ {
				v := float64(vol.At(i, j, k))
				sum += v
				sumSq += v * v
				n++
			}
		}
	}
	mean := sum / float64(n)
	return math.Sqrt(math.Max(0, sumSq/float64(n)-mean*mean))
}
