// Distributed example: run the full iFDK framework — the 2-D rank grid,
// per-rank three-thread pipelines, column AllGather and row Reduce of
// Figs. 3 and 4 — on an in-process cluster, and print the per-rank stage
// breakdown that corresponds to the paper's Fig. 4c trace.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"ifdk/internal/core"
	"ifdk/internal/ct/fdk"
	"ifdk/internal/ct/geometry"
	"ifdk/internal/ct/phantom"
	"ifdk/internal/ct/projector"
	"ifdk/internal/hpc/pfs"
	"ifdk/internal/volume"
)

func main() {
	// An R=2 × C=4 grid: 8 ranks, like one ABCI node pair. Rows own
	// mirrored Z-slab pairs; columns partition the 64 projections.
	const R, C = 2, 4
	g := geometry.Default(96, 96, 64, 48, 48, 48)
	fmt.Printf("iFDK on a %dx%d in-process grid: %dx%dx%d -> %dx%dx%d\n",
		R, C, g.Nu, g.Nv, g.Np, g.Nx, g.Ny, g.Nz)

	// Stage the dataset on the simulated parallel file system.
	ph := phantom.SheppLogan3D(g.FOVRadius() * 0.9)
	proj := projector.AnalyticAll(ph, g, 0)
	store := pfs.New(pfs.ABCIConfig())
	if err := core.StageProjections(store, "scan01", proj); err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	res, err := core.Run(core.Config{
		R: R, C: C,
		Geometry:       g,
		InputPrefix:    "scan01",
		OutputPrefix:   "recon01",
		AssembleVolume: true,
	}, store)
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)

	// Per-rank trace (the Fig. 4c analog).
	fmt.Println("\nper-rank pipeline breakdown (seconds):")
	fmt.Printf("%5s %5s %5s | %6s %6s %6s %6s | %7s %6s %6s | %5s\n",
		"rank", "row", "col", "load", "filt", "gather", "bp", "compute", "reduce", "store", "delta")
	for rank, t := range res.PerRank {
		fmt.Printf("%5d %5d %5d | %6.3f %6.3f %6.3f %6.3f | %7.3f %6.3f %6.3f | %5.2f\n",
			rank, core.RankRow(rank, R), core.RankCol(rank, R),
			t.Load.Seconds(), t.Filter.Seconds(), t.AllGather.Seconds(), t.Backproject.Seconds(),
			t.Compute.Seconds(), t.Reduce.Seconds(), t.Store.Seconds(), t.Delta())
	}
	fmt.Printf("\nwall time %.2fs, MPI traffic %.1f MiB, pipeline gain δ (max rank) %.2f\n",
		wall.Seconds(), float64(res.BytesSent)/(1<<20), res.Max.Delta())

	// Verify against the serial reference (the paper's RMSE < 1e-5 check).
	serial, err := fdk.Reconstruct(g, proj, fdk.Config{})
	if err != nil {
		log.Fatal(err)
	}
	rmse, err := volume.RMSE(serial, res.Volume)
	if err != nil {
		log.Fatal(err)
	}
	s := serial.Summarize()
	scale := math.Max(math.Abs(float64(s.Min)), math.Abs(float64(s.Max)))
	fmt.Printf("relative RMSE vs serial pipeline: %.2e (bound 1e-5)\n", rmse/scale)

	// The output also sits on the PFS as Nz slices, as in Sec. 4.1.3.
	fmt.Printf("PFS now holds %d output slices under recon01/\n", len(store.List("recon01/")))
}
