// Quickstart: reconstruct a 3-D volume from synthetic cone-beam projections
// in a few lines — generate projections of a uniform sphere, run the FDK
// pipeline (filtering + the paper's proposed back-projection), and inspect
// the result.
package main

import (
	"fmt"
	"log"
	"os"

	"ifdk/internal/ct/fdk"
	"ifdk/internal/ct/geometry"
	"ifdk/internal/ct/phantom"
	"ifdk/internal/ct/projector"
)

func main() {
	// A 64³ reconstruction from 96 projections of 128×128 pixels.
	g := geometry.Default(128, 128, 96, 64, 64, 64)

	// The object: a homogeneous sphere of density 1.0 filling half the
	// field of view.
	ph := phantom.UniformSphere(g.FOVRadius()*0.55, 1.0)

	// Forward-project (the analytic projector computes exact line
	// integrals — this is the stand-in for a real scanner).
	proj := projector.AnalyticAll(ph, g, 0)

	// Reconstruct with the default configuration: Ram-Lak ramp filter and
	// the proposed (Alg. 4) back-projection.
	vol, err := fdk.Reconstruct(g, proj, fdk.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// The centre voxel should recover the sphere density (≈1.0) and the
	// corner should be empty (≈0).
	fmt.Printf("centre voxel: %.3f (expected ≈ 1.0)\n", vol.At(32, 32, 32))
	fmt.Printf("corner voxel: %.3f (expected ≈ 0.0)\n", vol.At(2, 2, 32))

	// A density profile across the centre line shows the sphere edge.
	fmt.Print("profile y=32 z=32: ")
	for i := 0; i < g.Nx; i += 8 {
		fmt.Printf("%5.2f ", vol.At(i, 32, 32))
	}
	fmt.Println()

	// Save the centre slice for visual inspection.
	f, err := os.Create("quickstart_slice.png")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := vol.SliceZ(32).WritePNG(f, 0, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote quickstart_slice.png")
}
