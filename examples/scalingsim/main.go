// Scaling simulation example: reproduce the paper's headline experiments at
// full cluster scale — the 4K problem (2048²×4096 → 4096³) on up to 2,048
// simulated V100 GPUs within 30 seconds and the 8K problem (→ 8192³) within
// 2 minutes, including I/O — and translate the result into the cloud-cost
// estimate of Sec. 6.2.1 and the DGX-2 projection of Sec. 6.2.2.
package main

import (
	"fmt"
	"log"

	"ifdk/internal/bench"
	"ifdk/internal/perfmodel"
	"ifdk/internal/simcluster"
)

func main() {
	mb := perfmodel.ABCI()

	fmt.Println("== 4K strong scaling (R=32), simulated ABCI ==")
	cfg := bench.Fig5a()
	points, err := bench.RunFig5(cfg, mb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.RenderFig5(cfg, points))
	last := points[len(points)-1].Res
	fmt.Printf("\n4K on 2048 GPUs: %.1fs end-to-end (paper: <30s) at %.0f GUPS\n\n",
		last.SimTotal, last.GUPS)

	fmt.Println("== 8K on 2048 GPUs (R=256) ==")
	res8k, err := simcluster.Simulate(simcluster.Config{
		Problem: bench.EightK(), R: 256, C: 8, MB: mb,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("8K end-to-end: %.1fs (paper: <2 min), store alone %.1fs of a 2 TiB volume\n\n",
		res8k.SimTotal, res8k.SimStore)

	// Sec. 6.2.1: AWS cost estimate. 256 p3.8xlarge instances (4 V100
	// each) at $12.24/h, billed by the second, with a slowdown factor for
	// the 10 Gbps network.
	const (
		instances   = 256
		pricePerHr  = 12.24
		netSlowdown = 3.0 // AWS 10 Gbps vs ABCI InfiniBand EDR
	)
	res1k, err := simcluster.Simulate(simcluster.Config{
		Problem: bench.FourK(), R: 32, C: 32, MB: mb, // 1024 GPUs = 256 nodes
	})
	if err != nil {
		log.Fatal(err)
	}
	awsSeconds := res1k.SimTotal * netSlowdown
	cost := float64(instances) * pricePerHr / 3600 * awsSeconds
	fmt.Println("== AWS feasibility (Sec. 6.2.1) ==")
	fmt.Printf("4K on %d p3.8xlarge (1024 V100): ≈%.0fs including a %gx network slowdown\n",
		instances, awsSeconds, netSlowdown)
	fmt.Printf("on-demand cost ≈ $%.2f per volume (paper: \"less than $100\")\n\n", cost)

	// Sec. 6.2.2: a single DGX-2 (16 V100, NVSwitch, local SSD). Model it
	// as a 16-GPU grid with much faster interconnect and storage.
	dgx := mb
	dgx.BWAllGather = 50e9 // NVSwitch: 300 GB/s bisection shared
	dgx.THReduce = 40e9
	dgx.BWLoad = 8e9 // local NVMe array
	dgx.BWStore = 8e9
	dgx.BWPCIe = 60e9 // NVLink host links
	dgx.PCIeContention = 1
	resDGX, err := simcluster.Simulate(simcluster.Config{
		Problem: bench.FourK(), R: 16, C: 1, MB: dgx,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== DGX-2 projection (Sec. 6.2.2) ==")
	fmt.Printf("4K on one DGX-2 (16 V100): ≈%.0fs (paper projects \"within a minute\" for\n", resDGX.SimTotal)
	fmt.Println("compute; the local store of 256 GiB dominates on a single box)")
}
