package volume

import (
	"testing"
	"testing/quick"
)

func TestFloat32BytesRoundTrip(t *testing.T) {
	f := func(vals []float32) bool {
		out, err := BytesToFloat32s(Float32sToBytes(vals))
		if err != nil {
			return false
		}
		if len(out) != len(vals) {
			return false
		}
		for n := range vals {
			// NaNs compare unequal; compare the bit patterns via re-encode.
			if out[n] != vals[n] && !(vals[n] != vals[n] && out[n] != out[n]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBytesToFloat32sBadLength(t *testing.T) {
	if _, err := BytesToFloat32s(make([]byte, 5)); err == nil {
		t.Error("non-multiple-of-4 should error")
	}
}

func TestImageBytesRoundTrip(t *testing.T) {
	m := NewImage(5, 3)
	fillRandom(m.Data, 3)
	back, err := ImageFromBytes(ImageToBytes(m))
	if err != nil {
		t.Fatal(err)
	}
	if back.W != m.W || back.H != m.H {
		t.Fatalf("size mismatch %dx%d", back.W, back.H)
	}
	for n := range m.Data {
		if back.Data[n] != m.Data[n] {
			t.Fatal("payload mismatch")
		}
	}
}

func TestImageFromBytesErrors(t *testing.T) {
	if _, err := ImageFromBytes(nil); err == nil {
		t.Error("empty blob should error")
	}
	m := NewImage(2, 2)
	blob := ImageToBytes(m)
	if _, err := ImageFromBytes(blob[:len(blob)-1]); err == nil {
		t.Error("truncated blob should error")
	}
}
