package volume

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Float32sToBytes serializes a float32 slice to little-endian bytes. It is
// used when projections and volume slices cross the (simulated) parallel
// file system or the wire.
func Float32sToBytes(src []float32) []byte {
	out := make([]byte, 4*len(src))
	for n, x := range src {
		binary.LittleEndian.PutUint32(out[4*n:], math.Float32bits(x))
	}
	return out
}

// BytesToFloat32s deserializes little-endian bytes into float32 values.
func BytesToFloat32s(src []byte) ([]float32, error) {
	if len(src)%4 != 0 {
		return nil, fmt.Errorf("volume: byte length %d is not a multiple of 4", len(src))
	}
	out := make([]float32, len(src)/4)
	for n := range out {
		out[n] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*n:]))
	}
	return out, nil
}

// ImageToBytes serializes an image header (W, H as uint32) plus payload.
func ImageToBytes(m *Image) []byte {
	out := make([]byte, 8+4*len(m.Data))
	binary.LittleEndian.PutUint32(out[0:], uint32(m.W))
	binary.LittleEndian.PutUint32(out[4:], uint32(m.H))
	for n, x := range m.Data {
		binary.LittleEndian.PutUint32(out[8+4*n:], math.Float32bits(x))
	}
	return out
}

// ImageFromBytes reverses ImageToBytes.
func ImageFromBytes(src []byte) (*Image, error) {
	w, h, err := imageHeader(src)
	if err != nil {
		return nil, err
	}
	img := NewImage(w, h)
	decodePayload(img.Data, src)
	return img, nil
}

// ImageFromBytesInto decodes a blob into dst, whose dimensions must match
// the encoded header. It is the allocation-free sibling of ImageFromBytes:
// the pipeline decodes each staged projection into a pooled image.
func ImageFromBytesInto(dst *Image, src []byte) error {
	w, h, err := imageHeader(src)
	if err != nil {
		return err
	}
	if w != dst.W || h != dst.H {
		return fmt.Errorf("volume: image blob is %dx%d, destination is %dx%d", w, h, dst.W, dst.H)
	}
	decodePayload(dst.Data, src)
	return nil
}

func imageHeader(src []byte) (w, h int, err error) {
	if len(src) < 8 {
		return 0, 0, fmt.Errorf("volume: image blob too short (%d bytes)", len(src))
	}
	w = int(binary.LittleEndian.Uint32(src[0:]))
	h = int(binary.LittleEndian.Uint32(src[4:]))
	if w <= 0 || h <= 0 || len(src) != 8+4*w*h {
		return 0, 0, fmt.Errorf("volume: image blob header %dx%d inconsistent with %d bytes", w, h, len(src))
	}
	return w, h, nil
}

func decodePayload(dst []float32, src []byte) {
	for n := range dst {
		dst[n] = math.Float32frombits(binary.LittleEndian.Uint32(src[8+4*n:]))
	}
}
