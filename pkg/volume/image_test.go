package volume

import (
	"bytes"
	"image/png"
	"testing"
	"testing/quick"
)

func TestImageAtSet(t *testing.T) {
	m := NewImage(4, 3)
	m.Set(3, 2, 7)
	if m.At(3, 2) != 7 {
		t.Error("At after Set mismatch")
	}
	if m.Data[2*4+3] != 7 {
		t.Error("row-major layout violated")
	}
}

func TestImageRow(t *testing.T) {
	m := NewImage(3, 2)
	copy(m.Data, []float32{1, 2, 3, 4, 5, 6})
	r := m.Row(1)
	if len(r) != 3 || r[0] != 4 || r[2] != 6 {
		t.Errorf("Row(1) = %v", r)
	}
	r[0] = 9 // Row must alias, not copy.
	if m.At(0, 1) != 9 {
		t.Error("Row should alias image data")
	}
}

func TestTranspose(t *testing.T) {
	m := NewImage(3, 2)
	copy(m.Data, []float32{1, 2, 3, 4, 5, 6})
	tr := m.Transpose()
	if tr.W != 2 || tr.H != 3 {
		t.Fatalf("transpose size %dx%d", tr.W, tr.H)
	}
	for v := 0; v < m.H; v++ {
		for u := 0; u < m.W; u++ {
			if m.At(u, v) != tr.At(v, u) {
				t.Fatalf("transpose mismatch at (%d,%d)", u, v)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(w, h uint8, seed int64) bool {
		mw, mh := int(w%40)+1, int(h%40)+1
		m := NewImage(mw, mh)
		fillRandom(m.Data, seed)
		back := m.Transpose().Transpose()
		if back.W != m.W || back.H != m.H {
			return false
		}
		for n := range m.Data {
			if m.Data[n] != back.Data[n] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestImageRMSE(t *testing.T) {
	a := NewImage(2, 2)
	b := NewImage(2, 2)
	b.Fill3()
	r, err := ImageRMSE(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r != 3 {
		t.Errorf("RMSE = %v", r)
	}
	if _, err := ImageRMSE(a, NewImage(3, 2)); err == nil {
		t.Error("size mismatch should error")
	}
}

// Fill3 is a helper used only by tests.
func (m *Image) Fill3() {
	for n := range m.Data {
		m.Data[n] = 3
	}
}

func TestWritePNG(t *testing.T) {
	m := NewImage(8, 4)
	for n := range m.Data {
		m.Data[n] = float32(n)
	}
	var buf bytes.Buffer
	if err := m.WritePNG(&buf, 0, 0); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 8 || img.Bounds().Dy() != 4 {
		t.Errorf("png size %v", img.Bounds())
	}
}

func TestWritePNGConstantImage(t *testing.T) {
	m := NewImage(2, 2)
	var buf bytes.Buffer
	if err := m.WritePNG(&buf, 0, 0); err != nil {
		t.Fatalf("constant image should not fail: %v", err)
	}
}
