package volume

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"
)

// Image is a dense 2-D float32 matrix of W×H pixels stored row-major:
// Data[v*W+u]. For a CBCT projection W = Nu (detector width) and H = Nv
// (detector height), matching the (Nv, Nu)-shaped projections of Table 1.
type Image struct {
	W, H int
	Data []float32
}

// NewImage allocates a zeroed W×H image.
func NewImage(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("volume: invalid image size %dx%d", w, h))
	}
	return &Image{W: w, H: h, Data: make([]float32, w*h)}
}

// At returns pixel (u, v) where u indexes columns and v rows.
func (m *Image) At(u, v int) float32 { return m.Data[v*m.W+u] }

// Set stores x at pixel (u, v).
func (m *Image) Set(u, v int, x float32) { m.Data[v*m.W+u] = x }

// Row returns the v-th row as a subslice (no copy).
func (m *Image) Row(v int) []float32 { return m.Data[v*m.W : (v+1)*m.W] }

// Clone returns a deep copy.
func (m *Image) Clone() *Image {
	out := &Image{W: m.W, H: m.H, Data: make([]float32, len(m.Data))}
	copy(out.Data, m.Data)
	return out
}

// Transpose returns a new H×W image with axes swapped. The proposed
// back-projection algorithm transposes each filtered projection
// (Alg. 4 line 3) so that accesses along the detector V axis — the axis
// walked by the Z-symmetric inner loop — become contiguous.
func (m *Image) Transpose() *Image {
	out := NewImage(m.H, m.W)
	m.TransposeInto(out)
	return out
}

// TransposeInto writes the transpose into dst, which must be H×W. Every
// destination pixel is overwritten, so dst may come from a buffer pool with
// undefined contents.
func (m *Image) TransposeInto(dst *Image) {
	if dst.W != m.H || dst.H != m.W {
		panic(fmt.Sprintf("volume: transpose destination %dx%d for source %dx%d",
			dst.W, dst.H, m.W, m.H))
	}
	// Blocked transpose keeps both source rows and destination rows in
	// cache for large detectors (2048²+).
	const bs = 32
	for v0 := 0; v0 < m.H; v0 += bs {
		v1 := min(v0+bs, m.H)
		for u0 := 0; u0 < m.W; u0 += bs {
			u1 := min(u0+bs, m.W)
			for v := v0; v < v1; v++ {
				row := m.Data[v*m.W:]
				for u := u0; u < u1; u++ {
					dst.Data[u*m.H+v] = row[u]
				}
			}
		}
	}
}

// Summarize computes min/max/mean/std of the pixel payload.
func (m *Image) Summarize() Stats { return summarize(m.Data) }

// ImageRMSE returns the root-mean-square error between two equally sized
// images.
func ImageRMSE(a, b *Image) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("volume: image RMSE size mismatch %dx%d vs %dx%d",
			a.W, a.H, b.W, b.H)
	}
	return rmseFlat(a.Data, b.Data), nil
}

// WritePNG renders the image to an 8-bit grayscale PNG, linearly mapping
// [lo, hi] to [0, 255]. If lo == hi the image min/max is used. This mirrors
// the paper's use of ImageJ to render volumes for manual inspection
// (Sec. 5.1).
func (m *Image) WritePNG(w io.Writer, lo, hi float32) error {
	if lo == hi {
		s := m.Summarize()
		lo, hi = s.Min, s.Max
		if lo == hi {
			hi = lo + 1
		}
	}
	scale := 255.0 / float64(hi-lo)
	gray := image.NewGray(image.Rect(0, 0, m.W, m.H))
	for v := 0; v < m.H; v++ {
		for u := 0; u < m.W; u++ {
			x := (float64(m.At(u, v)) - float64(lo)) * scale
			x = math.Round(x)
			if x < 0 {
				x = 0
			}
			if x > 255 {
				x = 255
			}
			gray.SetGray(u, v, color.Gray{Y: uint8(x)})
		}
	}
	return png.Encode(w, gray)
}
