package volume

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func fillRandom(data []float32, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for n := range data {
		data[n] = rng.Float32()*2 - 1
	}
}

func TestIndexLayouts(t *testing.T) {
	v := New(3, 4, 5, IMajor)
	if got := v.Index(1, 2, 3); got != (3*4+2)*3+1 {
		t.Errorf("IMajor Index(1,2,3) = %d", got)
	}
	v.Layout = KMajor
	if got := v.Index(1, 2, 3); got != (1*4+2)*5+3 {
		t.Errorf("KMajor Index(1,2,3) = %d", got)
	}
}

func TestIndexBijective(t *testing.T) {
	for _, layout := range []Layout{IMajor, KMajor} {
		v := New(4, 3, 5, layout)
		seen := make(map[int]bool)
		for k := 0; k < v.Nz; k++ {
			for j := 0; j < v.Ny; j++ {
				for i := 0; i < v.Nx; i++ {
					idx := v.Index(i, j, k)
					if idx < 0 || idx >= len(v.Data) {
						t.Fatalf("%v: index out of range: %d", layout, idx)
					}
					if seen[idx] {
						t.Fatalf("%v: duplicate index %d", layout, idx)
					}
					seen[idx] = true
				}
			}
		}
		if len(seen) != v.NumVoxels() {
			t.Errorf("%v: covered %d of %d cells", layout, len(seen), v.NumVoxels())
		}
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	v := New(5, 6, 7, KMajor)
	v.Set(4, 5, 6, 2.5)
	if got := v.At(4, 5, 6); got != 2.5 {
		t.Errorf("At after Set = %v", got)
	}
	v.Add(4, 5, 6, 0.5)
	if got := v.At(4, 5, 6); got != 3.0 {
		t.Errorf("At after Add = %v", got)
	}
}

func TestReshapeRoundTrip(t *testing.T) {
	v := New(6, 5, 4, IMajor)
	fillRandom(v.Data, 1)
	k := v.Reshape(KMajor)
	if k.Layout != KMajor {
		t.Fatalf("Reshape layout = %v", k.Layout)
	}
	back := k.Reshape(IMajor)
	for n := range v.Data {
		if v.Data[n] != back.Data[n] {
			t.Fatalf("round trip mismatch at %d: %v vs %v", n, v.Data[n], back.Data[n])
		}
	}
	// Voxel values must be preserved under the layout change.
	for kk := 0; kk < v.Nz; kk++ {
		for j := 0; j < v.Ny; j++ {
			for i := 0; i < v.Nx; i++ {
				if v.At(i, j, kk) != k.At(i, j, kk) {
					t.Fatalf("reshape changed voxel (%d,%d,%d)", i, j, kk)
				}
			}
		}
	}
}

func TestReshapeSameLayoutIsCopy(t *testing.T) {
	v := New(2, 2, 2, IMajor)
	c := v.Reshape(IMajor)
	c.Data[0] = 42
	if v.Data[0] == 42 {
		t.Error("Reshape to same layout aliases the source")
	}
}

func TestCloneIndependent(t *testing.T) {
	v := New(2, 3, 4, KMajor)
	c := v.Clone()
	c.Data[5] = 9
	if v.Data[5] == 9 {
		t.Error("Clone aliases source data")
	}
	if c.Layout != v.Layout || c.Nx != v.Nx {
		t.Error("Clone lost metadata")
	}
}

func TestSliceZRoundTrip(t *testing.T) {
	v := New(4, 3, 2, IMajor)
	fillRandom(v.Data, 7)
	s := v.SliceZ(1)
	if s.W != 4 || s.H != 3 {
		t.Fatalf("slice size %dx%d", s.W, s.H)
	}
	for j := 0; j < 3; j++ {
		for i := 0; i < 4; i++ {
			if s.At(i, j) != v.At(i, j, 1) {
				t.Fatalf("slice mismatch at (%d,%d)", i, j)
			}
		}
	}
	w := New(4, 3, 2, KMajor)
	if err := w.SetSliceZ(1, s); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		for i := 0; i < 4; i++ {
			if w.At(i, j, 1) != v.At(i, j, 1) {
				t.Fatalf("SetSliceZ mismatch at (%d,%d)", i, j)
			}
		}
	}
	if err := w.SetSliceZ(0, NewImage(2, 2)); err == nil {
		t.Error("SetSliceZ with wrong size should fail")
	}
}

func TestRMSE(t *testing.T) {
	a := New(3, 3, 3, IMajor)
	b := New(3, 3, 3, IMajor)
	r, err := RMSE(a, b)
	if err != nil || r != 0 {
		t.Fatalf("RMSE of zeros = %v, %v", r, err)
	}
	b.Fill(2)
	r, _ = RMSE(a, b)
	if math.Abs(r-2) > 1e-12 {
		t.Errorf("RMSE of 0 vs 2 = %v", r)
	}
	// Layout-mixed comparison must agree with same-layout comparison.
	c := b.Reshape(KMajor)
	r2, _ := RMSE(a, c)
	if math.Abs(r2-r) > 1e-12 {
		t.Errorf("mixed-layout RMSE = %v, want %v", r2, r)
	}
	_, err = RMSE(a, New(2, 2, 2, IMajor))
	if err == nil {
		t.Error("RMSE with mismatched dims should fail")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := New(2, 2, 2, IMajor)
	b := New(2, 2, 2, KMajor)
	b.Set(1, 0, 1, -3)
	d, err := MaxAbsDiff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 3 {
		t.Errorf("MaxAbsDiff = %v, want 3", d)
	}
}

func TestSummarize(t *testing.T) {
	v := New(2, 2, 1, IMajor)
	copy(v.Data, []float32{1, 2, 3, 4})
	s := v.Summarize()
	if s.Min != 1 || s.Max != 4 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if math.Abs(s.Mean-2.5) > 1e-12 {
		t.Errorf("mean = %v", s.Mean)
	}
	if math.Abs(s.Std-math.Sqrt(1.25)) > 1e-9 {
		t.Errorf("std = %v", s.Std)
	}
}

// Property: reshape is an involution for arbitrary dimensions.
func TestReshapeProperty(t *testing.T) {
	f := func(nx, ny, nz uint8, seed int64) bool {
		x, y, z := int(nx%5)+1, int(ny%5)+1, int(nz%5)+1
		v := New(x, y, z, IMajor)
		fillRandom(v.Data, seed)
		back := v.Reshape(KMajor).Reshape(IMajor)
		for n := range v.Data {
			if v.Data[n] != back.Data[n] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLayoutString(t *testing.T) {
	if IMajor.String() != "i-major" || KMajor.String() != "k-major" {
		t.Error("Layout.String mismatch")
	}
	if Layout(9).String() == "" {
		t.Error("unknown layout should still format")
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0,1,1) should panic")
		}
	}()
	New(0, 1, 1, IMajor)
}
