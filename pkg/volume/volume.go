// Package volume provides the dense single-precision containers used
// throughout iFDK: 2-D projection images and 3-D reconstruction volumes.
//
// The paper stores all projections and volumes in float32 ("single precision
// for all projections, volumes, and runs", Sec. 5.1). Two volume memory
// layouts appear in the paper: the standard i-major layout used by the
// original FDK algorithm (Alg. 2) and the k-major layout introduced by the
// proposed algorithm (Alg. 4) to make voxel updates along the Z axis
// contiguous. Reshape converts between them (Alg. 4 line 22).
package volume

import (
	"fmt"
	"math"
)

// Layout selects the linear memory order of a Volume.
type Layout int

const (
	// IMajor is the conventional layout: the X (i) index varies fastest,
	// i.e. Data[(k*Ny+j)*Nx+i]. This is the layout of Alg. 2 and of the
	// slices written to storage.
	IMajor Layout = iota
	// KMajor is the proposed layout of Alg. 4: the Z (k) index varies
	// fastest, i.e. Data[(i*Ny+j)*Nz+k]. Along a vertical voxel line the
	// detector column u is constant (Theorem 2), so k-major updates are
	// contiguous.
	KMajor
)

// String implements fmt.Stringer.
func (l Layout) String() string {
	switch l {
	case IMajor:
		return "i-major"
	case KMajor:
		return "k-major"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// Volume is a dense 3-D float32 grid of Nx×Ny×Nz voxels in the given Layout.
type Volume struct {
	Nx, Ny, Nz int
	Layout     Layout
	Data       []float32
}

// New allocates a zeroed volume with the given dimensions and layout.
func New(nx, ny, nz int, layout Layout) *Volume {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic(fmt.Sprintf("volume: invalid dimensions %dx%dx%d", nx, ny, nz))
	}
	return &Volume{
		Nx:     nx,
		Ny:     ny,
		Nz:     nz,
		Layout: layout,
		Data:   make([]float32, nx*ny*nz),
	}
}

// NumVoxels returns Nx*Ny*Nz.
func (v *Volume) NumVoxels() int { return v.Nx * v.Ny * v.Nz }

// Bytes returns the payload size in bytes (4 bytes per voxel).
func (v *Volume) Bytes() int64 { return int64(v.NumVoxels()) * 4 }

// Index returns the linear index of voxel (i, j, k) under the volume layout.
func (v *Volume) Index(i, j, k int) int {
	if v.Layout == IMajor {
		return (k*v.Ny+j)*v.Nx + i
	}
	return (i*v.Ny+j)*v.Nz + k
}

// At returns voxel (i, j, k).
func (v *Volume) At(i, j, k int) float32 { return v.Data[v.Index(i, j, k)] }

// Set stores x at voxel (i, j, k).
func (v *Volume) Set(i, j, k int, x float32) { v.Data[v.Index(i, j, k)] = x }

// Add accumulates x into voxel (i, j, k).
func (v *Volume) Add(i, j, k int, x float32) { v.Data[v.Index(i, j, k)] += x }

// Fill sets every voxel to x.
func (v *Volume) Fill(x float32) {
	for n := range v.Data {
		v.Data[n] = x
	}
}

// Clone returns a deep copy of the volume.
func (v *Volume) Clone() *Volume {
	out := &Volume{Nx: v.Nx, Ny: v.Ny, Nz: v.Nz, Layout: v.Layout,
		Data: make([]float32, len(v.Data))}
	copy(out.Data, v.Data)
	return out
}

// Reshape returns a copy of the volume in the requested layout ("reshape
// means changing data layout", Alg. 4 line 22). When the layout already
// matches, a deep copy is still returned so the caller may mutate it freely.
func (v *Volume) Reshape(layout Layout) *Volume {
	out := New(v.Nx, v.Ny, v.Nz, layout)
	if layout == v.Layout {
		copy(out.Data, v.Data)
		return out
	}
	// Walk the destination contiguously for better write locality.
	if layout == IMajor {
		// src is k-major: src[(i*Ny+j)*Nz+k]
		n := 0
		for k := 0; k < v.Nz; k++ {
			for j := 0; j < v.Ny; j++ {
				base := j * v.Nz
				for i := 0; i < v.Nx; i++ {
					out.Data[n] = v.Data[i*v.Ny*v.Nz+base+k]
					n++
				}
			}
		}
		return out
	}
	// dst is k-major, src is i-major: src[(k*Ny+j)*Nx+i]
	n := 0
	for i := 0; i < v.Nx; i++ {
		for j := 0; j < v.Ny; j++ {
			base := j * v.Nx
			for k := 0; k < v.Nz; k++ {
				out.Data[n] = v.Data[k*v.Ny*v.Nx+base+i]
				n++
			}
		}
	}
	return out
}

// SliceZ extracts the axial slice at height k as an Nx×Ny image
// (volumes are stored to the PFS as Nz slices of size Nx×Ny, Sec. 4.1.3).
func (v *Volume) SliceZ(k int) *Image {
	img := NewImage(v.Nx, v.Ny)
	for j := 0; j < v.Ny; j++ {
		for i := 0; i < v.Nx; i++ {
			img.Data[j*v.Nx+i] = v.At(i, j, k)
		}
	}
	return img
}

// SetSliceZ overwrites axial slice k from an Nx×Ny image.
func (v *Volume) SetSliceZ(k int, img *Image) error {
	if img.W != v.Nx || img.H != v.Ny {
		return fmt.Errorf("volume: slice size %dx%d does not match volume %dx%d",
			img.W, img.H, v.Nx, v.Ny)
	}
	for j := 0; j < v.Ny; j++ {
		for i := 0; i < v.Nx; i++ {
			v.Set(i, j, k, img.Data[j*v.Nx+i])
		}
	}
	return nil
}

// Stats summarizes a float32 payload.
type Stats struct {
	Min, Max   float32
	Mean, Std  float64
	NumSamples int
}

// Summarize computes min/max/mean/std of the volume payload.
func (v *Volume) Summarize() Stats { return summarize(v.Data) }

func summarize(data []float32) Stats {
	if len(data) == 0 {
		return Stats{}
	}
	s := Stats{Min: data[0], Max: data[0], NumSamples: len(data)}
	var sum, sumSq float64
	for _, x := range data {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		f := float64(x)
		sum += f
		sumSq += f * f
	}
	n := float64(len(data))
	s.Mean = sum / n
	variance := sumSq/n - s.Mean*s.Mean
	if variance > 0 {
		s.Std = math.Sqrt(variance)
	}
	return s
}

// RMSE returns the root-mean-square error between two volumes. The volumes
// may use different layouts; they are compared voxel-by-voxel in (i, j, k)
// space. The paper verifies its output against the RTK CPU reference with
// RMSE < 1e-5 (Sec. 5.1).
func RMSE(a, b *Volume) (float64, error) {
	if a.Nx != b.Nx || a.Ny != b.Ny || a.Nz != b.Nz {
		return 0, fmt.Errorf("volume: RMSE dimension mismatch %dx%dx%d vs %dx%dx%d",
			a.Nx, a.Ny, a.Nz, b.Nx, b.Ny, b.Nz)
	}
	if a.Layout == b.Layout {
		return rmseFlat(a.Data, b.Data), nil
	}
	var sum float64
	for k := 0; k < a.Nz; k++ {
		for j := 0; j < a.Ny; j++ {
			for i := 0; i < a.Nx; i++ {
				d := float64(a.At(i, j, k)) - float64(b.At(i, j, k))
				sum += d * d
			}
		}
	}
	return math.Sqrt(sum / float64(a.NumVoxels())), nil
}

func rmseFlat(a, b []float32) float64 {
	var sum float64
	for n := range a {
		d := float64(a[n]) - float64(b[n])
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(a)))
}

// MaxAbsDiff returns the largest absolute voxel-wise difference between two
// equally sized volumes (layouts may differ).
func MaxAbsDiff(a, b *Volume) (float64, error) {
	if a.Nx != b.Nx || a.Ny != b.Ny || a.Nz != b.Nz {
		return 0, fmt.Errorf("volume: MaxAbsDiff dimension mismatch")
	}
	var worst float64
	for k := 0; k < a.Nz; k++ {
		for j := 0; j < a.Ny; j++ {
			for i := 0; i < a.Nx; i++ {
				d := math.Abs(float64(a.At(i, j, k)) - float64(b.At(i, j, k)))
				if d > worst {
					worst = d
				}
			}
		}
	}
	return worst, nil
}
