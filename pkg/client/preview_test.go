package client

import (
	"errors"
	"testing"

	"ifdk/internal/service"
	"ifdk/pkg/api"
	"ifdk/pkg/volume"
)

// progSpec is a small progressive job: NX 16 decimates at factor 2 into an
// 8³ coarse preview.
func progSpec(quality string) api.Spec {
	return api.Spec{Phantom: "shepplogan", NX: 16, R: 2, C: 2, Quality: quality}
}

// The progressive stream reassembles both tiers: the coarse preview first
// (never interleaved after a full-resolution part), then the full volume,
// and the hooks see each tier's slices exactly once.
func TestStreamProgressiveBothTiers(t *testing.T) {
	_, ts := newService(t, service.Options{Workers: 2})
	c := New(ts.URL)
	ctx := testCtx(t)

	v, err := c.Submit(ctx, progSpec(api.QualityProgressive))
	if err != nil {
		t.Fatal(err)
	}
	var prevHooks, fullHooks int
	var previewAfterFull bool
	res, err := c.StreamProgressive(ctx, v.ID, StreamHooks{
		OnPreview: func(z, total, factor int) {
			prevHooks++
			if fullHooks > 0 {
				previewAfterFull = true
			}
			if factor != 2 || total != 8 {
				t.Errorf("OnPreview(z=%d) factor=%d total=%d, want 2/8", z, factor, total)
			}
		},
		OnSlice: func(z, total int) {
			fullHooks++
			if total != 16 {
				t.Errorf("OnSlice(z=%d) total=%d, want 16", z, total)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.State != api.StateDone {
		t.Fatalf("job ended %s: %s", res.Final.State, res.Final.Error)
	}
	if previewAfterFull {
		t.Fatal("a preview part arrived after a full-resolution part")
	}
	if res.PreviewFactor != 2 || res.PreviewSlices != 8 || prevHooks != 8 {
		t.Fatalf("preview tier: factor %d, %d slices, %d hooks; want 2/8/8", res.PreviewFactor, res.PreviewSlices, prevHooks)
	}
	if res.Preview == nil || res.Preview.Nz != 8 || res.Preview.Nx != 8 {
		t.Fatalf("preview volume = %+v, want 8x8x8", res.Preview)
	}
	if res.Slices != 16 || fullHooks != 16 || res.Volume == nil || res.Volume.Nz != 16 {
		t.Fatalf("full tier: %d slices, %d hooks, vol %+v", res.Slices, fullHooks, res.Volume)
	}

	// GET /preview and WatchPreview must agree with the streamed tier bit
	// for bit; WatchPreview on a finished job resolves from event replay.
	pv, pf, err := c.Preview(ctx, v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if d, err := volume.MaxAbsDiff(pv, res.Preview); err != nil || d != 0 || pf != 2 {
		t.Fatalf("Preview = factor %d, diff %g, err %v; want 2, 0, nil", pf, d, err)
	}
	wv, wf, err := c.WatchPreview(ctx, v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if d, err := volume.MaxAbsDiff(wv, res.Preview); err != nil || d != 0 || wf != 2 {
		t.Fatalf("WatchPreview = factor %d, diff %g, err %v; want 2, 0, nil", wf, d, err)
	}
}

// A full-quality job has no preview tier: GET /preview reports the stable
// bad_request code, and WatchPreview errors once the job ends without a
// preview event instead of hanging.
func TestPreviewOfFullQualityJob(t *testing.T) {
	_, ts := newService(t, service.Options{Workers: 1})
	c := New(ts.URL)
	ctx := testCtx(t)

	v, err := c.Submit(ctx, progSpec(""))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Preview(ctx, v.ID); err == nil {
		t.Fatal("Preview of a full-quality job succeeded")
	} else {
		var apiErr *api.Error
		if !errors.As(err, &apiErr) || apiErr.Code != api.CodeBadRequest {
			t.Fatalf("Preview error = %v, want api.Error{bad_request}", err)
		}
	}
	if _, _, err := c.WatchPreview(ctx, v.ID); err == nil {
		t.Fatal("WatchPreview of a full-quality job succeeded")
	}
}

// A preview-quality job's coarse volume IS its result: the plain stream
// carries it as ordinary untagged parts, and GET /preview serves the same
// bits.
func TestPreviewQualityStream(t *testing.T) {
	_, ts := newService(t, service.Options{Workers: 1})
	c := New(ts.URL, WithGzip()) // exercise the per-part gzip decode path too
	ctx := testCtx(t)

	v, err := c.Submit(ctx, progSpec(api.QualityPreview))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.StreamProgressive(ctx, v.ID, StreamHooks{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Preview != nil || res.PreviewSlices != 0 {
		t.Fatalf("preview-quality stream tagged parts as preview tier: %+v", res)
	}
	if res.Slices != 8 || res.Volume == nil || res.Volume.Nz != 8 {
		t.Fatalf("preview-quality result = %d slices, vol %+v; want the 8³ coarse volume", res.Slices, res.Volume)
	}
	pv, pf, err := c.Preview(ctx, v.ID)
	if err != nil || pf != 2 {
		t.Fatalf("Preview = factor %d, err %v", pf, err)
	}
	if d, err := volume.MaxAbsDiff(pv, res.Volume); err != nil || d != 0 {
		t.Fatalf("GET /preview diff vs streamed result = %g, err %v", d, err)
	}
}
