package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"ifdk/pkg/api"
)

// Watch follows a job's lifecycle over SSE, invoking fn for every event in
// sequence order, and returns the job's terminal state once its stream
// ends. A dropped connection is survived transparently: Watch reconnects
// with the standard Last-Event-ID header carrying the highest sequence
// number already delivered, so fn sees every event exactly once, in order,
// with no duplicates across reconnects (the server's per-job log replays
// only Seq > Last-Event-ID).
//
// Watch returns when the terminal event has been delivered, when fn returns
// a non-nil error (propagated verbatim), when ctx ends, or when the server
// rejects the watch outright (*api.Error — e.g. not_found after the job was
// deleted). fn may be nil to just await termination event-driven.
func (c *Client) Watch(ctx context.Context, id string, fn func(api.Event) error) (api.State, error) {
	var lastSeq int64
	var terminal api.State
	attempt := 0
	for {
		state, seq, err := c.watchOnce(ctx, id, lastSeq, fn)
		if seq > lastSeq {
			// The connection delivered events before dropping: this is a
			// fresh outage, not a continuation of the last one. Without the
			// reset, a long watch over a flaky path (or a fleet failover per
			// reconnect) exhausts the retry budget cumulatively even though
			// every individual drop recovered fine.
			attempt = 0
		}
		lastSeq = seq
		if err == nil {
			terminal = state
			return terminal, nil
		}
		if ctx.Err() != nil {
			return "", ctx.Err()
		}
		if apiErr, ok := asAPIError(err); ok && !apiErr.Retryable() {
			return "", err
		}
		var fnErr *callbackError
		if errors.As(err, &fnErr) {
			return "", fnErr.err
		}
		// Transport drop or retryable server condition: back off and resume.
		attempt++
		if attempt >= c.retry.Max {
			return "", fmt.Errorf("client: watch %s: %d reconnects exhausted: %w", id, attempt, err)
		}
		wait := c.backoff(attempt, 0)
		if c.retry.OnRetry != nil {
			c.retry.OnRetry("watch_reconnect", attempt, wait)
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}
}

// callbackError marks an error produced by the caller's fn, which must
// abort the watch without retrying.
type callbackError struct{ err error }

func (e *callbackError) Error() string { return e.err.Error() }

// watchOnce holds one SSE connection, resuming after lastSeq, and returns
// the terminal state if the stream completed, or the highest delivered seq
// plus the reason it ended early.
func (c *Client) watchOnce(ctx context.Context, id string, lastSeq int64, fn func(api.Event) error) (api.State, int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return "", lastSeq, err
	}
	req.Header.Set("Accept", "text/event-stream")
	req.Header.Set("Cache-Control", "no-cache")
	if lastSeq > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatInt(lastSeq, 10))
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", lastSeq, err
	}
	if resp.StatusCode != http.StatusOK {
		return "", lastSeq, decodeError(resp)
	}
	defer resp.Body.Close()

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var e api.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
			return "", lastSeq, fmt.Errorf("client: bad event payload: %w", err)
		}
		if e.Seq <= lastSeq {
			continue // replay overlap after a reconnect; already delivered
		}
		lastSeq = e.Seq
		if fn != nil {
			if err := fn(e); err != nil {
				return "", lastSeq, &callbackError{err: err}
			}
		}
		if e.Type.Terminal() {
			return e.State, lastSeq, nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", lastSeq, err
	}
	// EOF without a terminal event: the connection was dropped mid-stream.
	return "", lastSeq, fmt.Errorf("client: event stream for %s ended without a terminal event", id)
}
