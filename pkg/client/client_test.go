package client

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ifdk/internal/service"
	"ifdk/pkg/api"
)

func newService(t *testing.T, opt service.Options) (*service.Manager, *httptest.Server) {
	t.Helper()
	m := service.NewManager(opt)
	ts := httptest.NewServer(service.NewServer(m))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := m.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return m, ts
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	t.Cleanup(cancel)
	return ctx
}

func TestSubmitGetListCancel(t *testing.T) {
	_, ts := newService(t, service.Options{Workers: 2})
	c := New(ts.URL)
	ctx := testCtx(t)

	v, err := c.Submit(ctx, api.Spec{Phantom: "sphere", NX: 16, NP: 32})
	if err != nil {
		t.Fatal(err)
	}
	if v.ID == "" {
		t.Fatal("submit returned no job id")
	}
	got, err := c.Get(ctx, v.ID)
	if err != nil || got.ID != v.ID {
		t.Fatalf("Get = %+v, %v", got, err)
	}
	vs, err := c.List(ctx)
	if err != nil || len(vs) != 1 {
		t.Fatalf("List = %d jobs, %v", len(vs), err)
	}
	final, err := c.Await(ctx, v.ID, 5*time.Millisecond)
	if err != nil || final.State != api.StateDone {
		t.Fatalf("Await = %+v, %v", final, err)
	}
	// Cancel of a terminal job deletes it; a second Get must report the
	// stable not_found code.
	if err := c.Cancel(ctx, v.ID); err != nil {
		t.Fatalf("Cancel(done job): %v", err)
	}
	_, err = c.Get(ctx, v.ID)
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeNotFound {
		t.Fatalf("Get after delete: %v, want api.Error{not_found}", err)
	}
}

func TestSubmitInvalidSpecNotRetried(t *testing.T) {
	_, ts := newService(t, service.Options{Workers: 1})
	retries := 0
	c := New(ts.URL, WithRetry(Retry{OnRetry: func(string, int, time.Duration) { retries++ }}))
	_, err := c.Submit(testCtx(t), api.Spec{Phantom: "banana"})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeInvalidSpec {
		t.Fatalf("err = %v, want invalid_spec", err)
	}
	if retries != 0 {
		t.Fatalf("invalid spec was retried %d times", retries)
	}
}

// Submit must ride out transient saturation (queue_full) with backoff until
// the worker drains the queue.
func TestSubmitRetriesSaturation(t *testing.T) {
	_, ts := newService(t, service.Options{Workers: 1, QueueCap: 1, CacheBytes: -1})
	var retried atomic.Int32
	c := New(ts.URL, WithRetry(Retry{Max: 40, Base: 10 * time.Millisecond, Cap: 100 * time.Millisecond,
		OnRetry: func(code string, _ int, _ time.Duration) {
			if code == api.CodeQueueFull {
				retried.Add(1)
			}
		}}))
	ctx := testCtx(t)
	// Burst more distinct jobs than queue+workers can hold; every one must
	// eventually land thanks to retry.
	ids := make(chan string, 6)
	errc := make(chan error, 6)
	for i := 0; i < 6; i++ {
		go func(i int) {
			v, err := c.Submit(ctx, api.Spec{Phantom: "sphere", NX: 16, NP: 32 + 32*i})
			if err != nil {
				errc <- err
				return
			}
			ids <- v.ID
		}(i)
	}
	for i := 0; i < 6; i++ {
		select {
		case err := <-errc:
			t.Fatalf("submit %d failed: %v", i, err)
		case id := <-ids:
			if _, err := c.Await(ctx, id, 5*time.Millisecond); err != nil {
				t.Fatalf("await %s: %v", id, err)
			}
		}
	}
	if retried.Load() == 0 {
		t.Log("note: queue drained fast enough that no 503 was observed")
	}
}

// flakyProxy fronts a real server and hard-drops the first `drops` SSE
// connections after their first delivered event, exercising Watch's
// Last-Event-ID resume path.
type flakyProxy struct {
	upstream *url.URL
	proxy    *httputil.ReverseProxy
	drops    atomic.Int32
	dropped  atomic.Int32
}

func newFlakyProxy(t *testing.T, upstream string, drops int32) *httptest.Server {
	t.Helper()
	u, err := url.Parse(upstream)
	if err != nil {
		t.Fatal(err)
	}
	fp := &flakyProxy{upstream: u, proxy: httputil.NewSingleHostReverseProxy(u)}
	fp.proxy.FlushInterval = -1
	fp.drops.Store(drops)
	ts := httptest.NewServer(fp)
	t.Cleanup(ts.Close)
	return ts
}

func (f *flakyProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasSuffix(r.URL.Path, "/events") && f.drops.Add(-1) >= 0 {
		f.dropped.Add(1)
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, f.upstream.String()+r.URL.String(), nil)
		if err != nil {
			panic(http.ErrAbortHandler)
		}
		req.Header = r.Header.Clone()
		resp, err := http.DefaultTransport.RoundTrip(req)
		if err != nil {
			panic(http.ErrAbortHandler)
		}
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		br := bufio.NewReader(resp.Body)
		for {
			line, err := br.ReadBytes('\n')
			if len(line) > 0 {
				_, _ = w.Write(line)
				w.(http.Flusher).Flush()
			}
			if err != nil {
				return
			}
			if bytes.Equal(line, []byte("\n")) {
				// One full SSE event delivered: cut the connection dead.
				panic(http.ErrAbortHandler)
			}
		}
	}
	f.proxy.ServeHTTP(w, r)
}

// Watch must survive dropped SSE connections without losing or duplicating
// events: sequence numbers strictly increase across reconnects, the
// finished job's retained log is a subset of what the flaky watcher saw
// (nothing lost; round events may legitimately coalesce away), and every
// slice event arrives exactly once.
func TestWatchReconnectsAfterDrop(t *testing.T) {
	_, ts := newService(t, service.Options{Workers: 2})
	flaky := newFlakyProxy(t, ts.URL, 2)
	ctx := testCtx(t)

	direct := New(ts.URL)
	v, err := direct.Submit(ctx, api.Spec{Phantom: "sphere", NX: 16, NP: 64})
	if err != nil {
		t.Fatal(err)
	}

	c := New(flaky.URL, WithRetry(Retry{Max: 10, Base: 5 * time.Millisecond}))
	var seqs []int64
	sliceSeen := map[int]int{}
	state, err := c.Watch(ctx, v.ID, func(e api.Event) error {
		seqs = append(seqs, e.Seq)
		if e.Type == api.EventSlice {
			sliceSeen[e.Z]++
		}
		return nil
	})
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	if state != api.StateDone {
		t.Fatalf("terminal state = %s, want done", state)
	}

	// Seq contiguity across reconnects: strictly increasing, no duplicates.
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("seq not strictly increasing at %d: %v", i, seqs)
		}
	}
	// Exactly-once slice delivery (slice events are never coalesced).
	if len(sliceSeen) != 16 {
		t.Fatalf("saw %d distinct slice events, want 16", len(sliceSeen))
	}
	for z, n := range sliceSeen {
		if n != 1 {
			t.Fatalf("slice %d delivered %d times", z, n)
		}
	}
	// Nothing lost: the terminal retained log (ground truth after
	// coalescing) must be a subset of the flaky watcher's deliveries.
	got := map[int64]bool{}
	for _, s := range seqs {
		got[s] = true
	}
	var refMissing []int64
	if _, err := direct.Watch(ctx, v.ID, func(e api.Event) error {
		if !got[e.Seq] {
			refMissing = append(refMissing, e.Seq)
		}
		return nil
	}); err != nil {
		t.Fatalf("reference watch: %v", err)
	}
	if len(refMissing) > 0 {
		t.Fatalf("flaky watcher lost retained events %v", refMissing)
	}
}

// The reconnect budget is per outage, not per watch: a connection that
// delivered events before dropping resets the attempt counter, so a long
// watch over a flaky path survives more total drops than Retry.Max as long
// as each individual drop recovers. Six cuts against a budget of three
// would exhaust a cumulative counter; with the reset the watch completes.
func TestWatchRetryBudgetResetsOnProgress(t *testing.T) {
	_, ts := newService(t, service.Options{Workers: 2})
	flaky := newFlakyProxy(t, ts.URL, 6)
	ctx := testCtx(t)

	direct := New(ts.URL)
	v, err := direct.Submit(ctx, api.Spec{Phantom: "sphere", NX: 16, NP: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Let the job finish first: every reconnect then replays at least one
	// retained event before the proxy cuts it, making progress deterministic.
	if _, err := direct.Await(ctx, v.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	c := New(flaky.URL, WithRetry(Retry{Max: 3, Base: time.Millisecond}))
	state, err := c.Watch(ctx, v.ID, nil)
	if err != nil {
		t.Fatalf("watch exhausted its reconnect budget despite per-connection progress: %v", err)
	}
	if state != api.StateDone {
		t.Fatalf("terminal state = %s, want done", state)
	}
}

// Watch on an unknown job must fail fast with the stable code, not retry.
func TestWatchNotFound(t *testing.T) {
	_, ts := newService(t, service.Options{Workers: 1})
	c := New(ts.URL, WithRetry(Retry{Max: 3, Base: time.Millisecond}))
	_, err := c.Watch(testCtx(t), "nope", nil)
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeNotFound {
		t.Fatalf("err = %v, want not_found", err)
	}
}

// A late-attached Stream must reassemble the volume bit-exactly from the
// result, with exactly-once slice accounting — plain and gzip.
func TestStreamLateAttachBitExact(t *testing.T) {
	m, ts := newService(t, service.Options{Workers: 2})
	ctx := testCtx(t)
	direct := New(ts.URL)
	v, err := direct.Submit(ctx, api.Spec{Phantom: "shepplogan", NX: 16, NP: 32})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := direct.Await(ctx, v.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	want, err := m.Volume(v.ID)
	if err != nil {
		t.Fatal(err)
	}

	for _, gz := range []bool{false, true} {
		opts := []Option{}
		if gz {
			opts = append(opts, WithGzip())
		}
		c := New(ts.URL, opts...)
		res, err := c.Stream(ctx, v.ID, nil)
		if err != nil {
			t.Fatalf("gzip=%v: %v", gz, err)
		}
		if res.Final.State != api.StateDone || res.Slices != want.Nz {
			t.Fatalf("gzip=%v: final=%s slices=%d", gz, res.Final.State, res.Slices)
		}
		if res.Volume.Nx != want.Nx || res.Volume.Ny != want.Ny || res.Volume.Nz != want.Nz {
			t.Fatalf("gzip=%v: dims %dx%dx%d, want %dx%dx%d", gz,
				res.Volume.Nx, res.Volume.Ny, res.Volume.Nz, want.Nx, want.Ny, want.Nz)
		}
		for z := 0; z < want.Nz; z++ {
			a, b := res.Volume.SliceZ(z), want.SliceZ(z)
			for i := range a.Data {
				if a.Data[i] != b.Data[i] {
					t.Fatalf("gzip=%v: slice %d differs at %d: %v != %v", gz, z, i, a.Data[i], b.Data[i])
				}
			}
		}
		if gz {
			if res.WireBytes >= res.RawBytes {
				t.Errorf("gzip saved nothing: wire %d >= raw %d", res.WireBytes, res.RawBytes)
			}
		} else if res.WireBytes != res.RawBytes {
			t.Errorf("identity stream: wire %d != raw %d", res.WireBytes, res.RawBytes)
		}
	}
}

// A Stream attached immediately after submit (typically mid-run) must see
// every slice exactly once and match the settled result bit-exactly.
func TestStreamMidRunExactlyOnce(t *testing.T) {
	m, ts := newService(t, service.Options{Workers: 2})
	ctx := testCtx(t)
	c := New(ts.URL)
	v, err := c.Submit(ctx, api.Spec{Phantom: "sphere", NX: 16, NP: 96, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	res, err := c.Stream(ctx, v.ID, func(z, total int) { order = append(order, z) })
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.State != api.StateDone {
		t.Fatalf("final state %s: %s", res.Final.State, res.Final.Error)
	}
	if len(order) != 16 || res.Slices != 16 {
		t.Fatalf("streamed %d slice callbacks / %d slices, want 16", len(order), res.Slices)
	}
	want, err := m.Volume(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	for z := 0; z < want.Nz; z++ {
		a, b := res.Volume.SliceZ(z), want.SliceZ(z)
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				t.Fatalf("slice %d differs at %d", z, i)
			}
		}
	}
}

// Streaming a cancelled job must surface the terminal code.
func TestStreamTerminalConflict(t *testing.T) {
	m, ts := newService(t, service.Options{Workers: 1, CacheBytes: -1})
	ctx := testCtx(t)
	c := New(ts.URL)
	// Occupy the single worker so the second job stays queued for certain.
	blocker, err := c.Submit(ctx, api.Spec{Phantom: "sphere", NX: 16, NP: 256})
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Submit(ctx, api.Spec{Phantom: "sphere", NX: 16, NP: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Cancel(ctx, v.ID); err != nil {
		t.Fatal(err)
	}
	if final, err := c.Await(ctx, v.ID, time.Millisecond); err == nil && final.State == api.StateCancelled {
		_, err = c.Stream(ctx, v.ID, nil)
		var apiErr *api.Error
		if !errors.As(err, &apiErr) || apiErr.Code != api.CodeTerminal {
			t.Fatalf("stream of cancelled job: %v, want terminal", err)
		}
	}
	_ = m
	if _, err := c.Await(ctx, blocker.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
}
