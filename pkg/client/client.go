// Package client is the Go SDK for the iFDK reconstruction service: a
// typed wrapper over the versioned pkg/api HTTP contract served by ifdkd
// (or transparently by an ifdk-router fronting a fleet of them — the SDK
// cannot tell the difference, which is the point).
//
//	c := client.New("http://localhost:8080")
//	v, err := c.Submit(ctx, api.Spec{Phantom: "shepplogan", NX: 64})
//	_, err = c.Watch(ctx, v.ID, func(e api.Event) error { ... })
//	res, err := c.Stream(ctx, v.ID, nil) // res.Volume is the full volume
//
// Submit retries transient saturation (queue_full, cost_budget,
// working_set, quota_exhausted — see api.Retryable) with jittered
// exponential backoff; Watch survives dropped SSE connections by resuming
// with Last-Event-ID; Stream reassembles the live multipart slice stream
// into a volume with exactly-once slice accounting and transparent
// per-part gzip decoding. All failures carry *api.Error where the server
// sent one, so callers branch on stable codes with errors.As.
//
// Every Submit carries W3C trace context (a traceparent header with a fresh
// trace ID, or the caller's own via SubmitTraced); Trace returns the job's
// assembled span tree, router hop included.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"ifdk/pkg/api"
)

// Retry shapes the SDK's handling of retryable api.Error codes: full-jitter
// exponential backoff, honouring any server Retry-After hint as a floor.
type Retry struct {
	Max     int           // max attempts including the first (0 → default 8, 1 → no retries)
	Base    time.Duration // first backoff step (0 → default 25ms)
	Cap     time.Duration // backoff ceiling (0 → default 2s)
	OnRetry func(code string, attempt int, wait time.Duration)
}

func (r Retry) withDefaults() Retry {
	if r.Max <= 0 {
		r.Max = 8
	}
	if r.Base <= 0 {
		r.Base = 25 * time.Millisecond
	}
	if r.Cap <= 0 {
		r.Cap = 2 * time.Second
	}
	return r
}

// Client talks to one service base URL. It is safe for concurrent use.
type Client struct {
	base  string
	http  *http.Client
	retry Retry
	gzip  bool

	mu  sync.Mutex
	rng *rand.Rand
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the transport (the default has no timeout:
// Watch and Stream hold connections open for the life of a job; use
// per-call contexts for deadlines).
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.http = h } }

// WithRetry overrides the retry policy for Submit and friends.
func WithRetry(r Retry) Option { return func(c *Client) { c.retry = r } }

// WithGzip makes Stream request per-part gzip slice encoding
// (Accept-Encoding: gzip); decoding is transparent either way.
func WithGzip() Option { return func(c *Client) { c.gzip = true } }

// New creates a client for the service at base (e.g. "http://host:8080").
func New(base string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(base, "/"),
		http: &http.Client{},
		rng:  rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	for _, o := range opts {
		o(c)
	}
	c.retry = c.retry.withDefaults()
	return c
}

// BaseURL returns the configured service base URL.
func (c *Client) BaseURL() string { return c.base }

// backoff returns the full-jitter wait before retry attempt (1-based),
// floored at the server's Retry-After hint when one was given.
func (c *Client) backoff(attempt int, hint float64) time.Duration {
	d := c.retry.Base << uint(attempt-1)
	if d > c.retry.Cap || d <= 0 {
		d = c.retry.Cap
	}
	c.mu.Lock()
	d = time.Duration(c.rng.Int63n(int64(d) + 1))
	c.mu.Unlock()
	if floor := time.Duration(hint * float64(time.Second)); floor > 0 && d < floor {
		d = floor
	}
	return d
}

// decodeError turns a non-2xx response into an error, preferring the
// api.Error envelope and falling back to a synthesized one for non-JSON
// bodies (old servers, intermediaries).
func decodeError(resp *http.Response) error {
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var e api.Error
	if err := json.Unmarshal(body, &e); err == nil && e.Code != "" {
		return &e
	}
	code := api.CodeInternal
	switch resp.StatusCode {
	case http.StatusNotFound:
		code = api.CodeNotFound
	case http.StatusBadRequest:
		code = api.CodeBadRequest
	case http.StatusConflict:
		code = api.CodeTerminal
	case http.StatusServiceUnavailable, http.StatusBadGateway:
		code = api.CodeUnavailable
	case http.StatusTooManyRequests:
		code = api.CodeQuotaExhausted
	}
	return &api.Error{Code: code, Message: fmt.Sprintf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))}
}

// doJSON performs one request and decodes a 2xx JSON body into out (when
// non-nil). Extra request headers come from hdr (may be nil). Non-2xx
// responses become errors via decodeError.
func (c *Client) doJSON(ctx context.Context, method, path string, hdr map[string]string, in, out any) error {
	var body io.Reader
	if in != nil {
		blob, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp)
	}
	defer resp.Body.Close()
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit sends a reconstruction spec, retrying retryable saturation codes
// with jittered backoff, and returns the accepted (or cache-hit) job view.
// Every submission carries W3C trace context: Submit mints a fresh trace ID
// and client root span (the returned View.TraceID echoes the trace; follow
// it with Trace). To join an existing trace, use SubmitTraced.
func (c *Client) Submit(ctx context.Context, spec api.Spec) (api.View, error) {
	return c.SubmitTraced(ctx, spec, api.FormatTraceParent(api.NewTraceID(), api.NewSpanID()))
}

// SubmitTraced is Submit under a caller-supplied W3C traceparent
// ("00-<32 hex trace>-<16 hex span>-01", see api.FormatTraceParent), so the
// job's spans nest into a trace the caller already owns. An empty
// traceparent submits without trace context and lets the service mint the
// trace ID. Retries reuse the same traceparent: they are one logical
// request.
func (c *Client) SubmitTraced(ctx context.Context, spec api.Spec, traceparent string) (api.View, error) {
	var hdr map[string]string
	if traceparent != "" {
		hdr = map[string]string{api.TraceParentHeader: traceparent}
	}
	var v api.View
	var lastErr error
	for attempt := 1; attempt <= c.retry.Max; attempt++ {
		lastErr = c.doJSON(ctx, http.MethodPost, "/v1/jobs", hdr, spec, &v)
		if lastErr == nil {
			return v, nil
		}
		apiErr, ok := asAPIError(lastErr)
		if !ok || !apiErr.Retryable() || attempt == c.retry.Max {
			return api.View{}, lastErr
		}
		wait := c.backoff(attempt, apiErr.RetryAfter)
		if c.retry.OnRetry != nil {
			c.retry.OnRetry(apiErr.Code, attempt, wait)
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return api.View{}, ctx.Err()
		}
	}
	return api.View{}, lastErr
}

// Get returns one job's current view.
func (c *Client) Get(ctx context.Context, id string) (api.View, error) {
	var v api.View
	err := c.doJSON(ctx, http.MethodGet, "/v1/jobs/"+id, nil, nil, &v)
	return v, err
}

// List returns all jobs in submission order.
func (c *Client) List(ctx context.Context) ([]api.View, error) {
	var vs []api.View
	err := c.doJSON(ctx, http.MethodGet, "/v1/jobs", nil, nil, &vs)
	return vs, err
}

// Cancel stops a live job or deletes a terminal one (the server's DELETE
// verb is race-free across that distinction).
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.doJSON(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, nil, nil)
}

// Metrics returns the service (or, through a router, fleet-aggregate)
// counters snapshot.
func (c *Client) Metrics(ctx context.Context) (api.Metrics, error) {
	var m api.Metrics
	err := c.doJSON(ctx, http.MethodGet, "/v1/metrics", nil, nil, &m)
	return m, err
}

// Trace returns the job's span tree: complete once the job has settled,
// partial (Trace.Complete == false) while it is still queued or running.
// Through a router the tree includes the router's proxy span.
func (c *Client) Trace(ctx context.Context, id string) (api.Trace, error) {
	var t api.Trace
	err := c.doJSON(ctx, http.MethodGet, "/v1/jobs/"+id+"/trace", nil, nil, &t)
	return t, err
}

// Await polls a job to a terminal state and returns its final view. For
// event-driven completion use Watch; Await is the cheap fallback when only
// the outcome matters. Retryable poll errors (a router briefly rerouting
// the job around a dead backend surfaces "unavailable") are absorbed and
// polling continues; hard errors return immediately.
func (c *Client) Await(ctx context.Context, id string, poll time.Duration) (api.View, error) {
	if poll <= 0 {
		poll = 10 * time.Millisecond
	}
	for {
		v, err := c.Get(ctx, id)
		if err != nil {
			if apiErr, ok := asAPIError(err); !ok || !apiErr.Retryable() {
				return api.View{}, err
			}
			select {
			case <-time.After(poll):
				continue
			case <-ctx.Done():
				return api.View{}, ctx.Err()
			}
		}
		if v.State.Terminal() {
			return v, nil
		}
		select {
		case <-time.After(poll):
		case <-ctx.Done():
			return api.View{}, ctx.Err()
		}
	}
}

func asAPIError(err error) (*api.Error, bool) {
	var e *api.Error
	if errors.As(err, &e) {
		return e, true
	}
	return nil, false
}
