package client

import (
	"testing"
	"time"

	"ifdk/internal/service"
	"ifdk/pkg/api"
)

// Submit must stamp a valid traceparent the service adopts: the returned
// View carries the SDK-minted trace ID, and Trace returns the settled
// lifecycle tree under that same ID.
func TestSubmitMintsTraceAndTraceFollows(t *testing.T) {
	_, ts := newService(t, service.Options{Workers: 2})
	c := New(ts.URL)
	ctx := testCtx(t)

	v, err := c.Submit(ctx, api.Spec{Phantom: "sphere", NX: 16, NP: 32})
	if err != nil {
		t.Fatal(err)
	}
	if v.TraceID == "" || len(v.TraceID) != 32 {
		t.Fatalf("view trace_id = %q, want an SDK-minted 32-hex trace ID", v.TraceID)
	}
	if _, err := c.Await(ctx, v.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	tr, err := c.Trace(ctx, v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if tr.TraceID != v.TraceID {
		t.Fatalf("trace id %q != view trace_id %q", tr.TraceID, v.TraceID)
	}
	if tr.Job != v.ID || !tr.Complete {
		t.Fatalf("trace = {job %q complete %v}, want settled trace of %q", tr.Job, tr.Complete, v.ID)
	}
	names := map[string]bool{}
	for _, s := range tr.Spans {
		if s.TraceID != v.TraceID {
			t.Fatalf("span %s under trace %q, want %q", s.Name, s.TraceID, v.TraceID)
		}
		names[s.Name] = true
	}
	for _, want := range []string{"job", "queue.wait", "compute", "backproject", "reduce", "store"} {
		if !names[want] {
			t.Errorf("span %q missing from %v", want, names)
		}
	}
}

// SubmitTraced passes the caller's traceparent through verbatim, so the
// job joins a trace the caller already owns.
func TestSubmitTracedJoinsCallerTrace(t *testing.T) {
	_, ts := newService(t, service.Options{Workers: 2})
	c := New(ts.URL)
	ctx := testCtx(t)

	traceID, spanID := api.NewTraceID(), api.NewSpanID()
	v, err := c.SubmitTraced(ctx, api.Spec{Phantom: "sphere", NX: 16, NP: 32},
		api.FormatTraceParent(traceID, spanID))
	if err != nil {
		t.Fatal(err)
	}
	if v.TraceID != traceID {
		t.Fatalf("view trace_id = %q, want caller's %q", v.TraceID, traceID)
	}
	if _, err := c.Await(ctx, v.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	tr, err := c.Trace(ctx, v.ID)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tr.Spans {
		if s.Name == "job" && s.ParentSpanID != spanID {
			t.Fatalf("job span parent %q, want the caller span %q", s.ParentSpanID, spanID)
		}
	}
}

// Trace on an unknown job surfaces the stable not_found code.
func TestTraceNotFound(t *testing.T) {
	_, ts := newService(t, service.Options{Workers: 1})
	c := New(ts.URL)
	_, err := c.Trace(testCtx(t), "nope")
	apiErr, ok := asAPIError(err)
	if !ok || apiErr.Code != api.CodeNotFound {
		t.Fatalf("Trace(unknown) = %v, want api.Error{not_found}", err)
	}
}
