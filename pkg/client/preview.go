package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"strconv"

	"ifdk/internal/compress"
	"ifdk/pkg/api"
	"ifdk/pkg/volume"
)

// Preview fetches GET /v1/jobs/{id}/preview — a preview or progressive
// job's coarse tier as one multipart response — and reassembles it into a
// volume, returning the decimation factor alongside. The server answers
// not_yet_written (retryable *api.Error) while the preview phase is still
// running; WatchPreview waits for the preview event instead of polling.
func (c *Client) Preview(ctx context.Context, id string) (*volume.Volume, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/preview", nil)
	if err != nil {
		return nil, 0, err
	}
	if c.gzip {
		req.Header.Set("Accept-Encoding", "gzip")
	} else {
		req.Header.Set("Accept-Encoding", "identity")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, decodeError(resp)
	}
	factor, err := strconv.Atoi(resp.Header.Get(api.HeaderPreviewFactor))
	if err != nil || factor < 1 {
		return nil, 0, fmt.Errorf("client: preview response with bad %s header %q",
			api.HeaderPreviewFactor, resp.Header.Get(api.HeaderPreviewFactor))
	}
	_, params, err := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	if err != nil || params["boundary"] == "" {
		return nil, 0, fmt.Errorf("client: preview Content-Type %q has no boundary", resp.Header.Get("Content-Type"))
	}

	var vol *volume.Volume
	var seen []bool
	got := 0
	mr := multipart.NewReader(resp.Body, params["boundary"])
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, 0, fmt.Errorf("client: preview of %s: %w", id, err)
		}
		blob, err := io.ReadAll(part)
		if err != nil {
			return nil, 0, fmt.Errorf("client: reading preview part: %w", err)
		}
		if part.Header.Get("Content-Encoding") == api.EncodingGzip {
			if blob, err = compress.Gunzip(blob); err != nil {
				return nil, 0, fmt.Errorf("client: preview part: %w", err)
			}
		}
		z, err := strconv.Atoi(part.Header.Get(api.HeaderSliceZ))
		if err != nil {
			return nil, 0, fmt.Errorf("client: preview part without a %s header", api.HeaderSliceZ)
		}
		total, err := strconv.Atoi(part.Header.Get(api.HeaderSliceTotal))
		if err != nil || total <= 0 {
			return nil, 0, fmt.Errorf("client: preview part without a %s header", api.HeaderSliceTotal)
		}
		img, err := volume.ImageFromBytes(blob)
		if err != nil {
			return nil, 0, fmt.Errorf("client: preview slice %d payload: %w", z, err)
		}
		if vol == nil {
			vol = volume.New(img.W, img.H, total, volume.IMajor)
			seen = make([]bool, total)
		}
		if z < 0 || z >= len(seen) {
			return nil, 0, fmt.Errorf("client: preview slice index %d out of range [0,%d)", z, len(seen))
		}
		if seen[z] {
			return nil, 0, fmt.Errorf("client: preview slice %d delivered twice", z)
		}
		seen[z] = true
		if err := vol.SetSliceZ(z, img); err != nil {
			return nil, 0, err
		}
		got++
	}
	if vol == nil {
		return nil, 0, fmt.Errorf("client: preview of %s carried no slices", id)
	}
	if got != vol.Nz {
		return nil, 0, fmt.Errorf("client: preview of %s truncated: %d/%d slices", id, got, vol.Nz)
	}
	return vol, factor, nil
}

// errPreviewReady aborts the event watch once the preview event arrives.
var errPreviewReady = errors.New("preview ready")

// WatchPreview blocks until the job's preview tier exists — following the
// event stream for the preview event rather than polling — then fetches and
// returns it with its decimation factor. Event replay makes it safe to call
// at any point in the job's life, including after completion. A job that
// reaches a terminal state without ever announcing a preview (quality
// "full", or a failure before the preview phase) returns an error.
func (c *Client) WatchPreview(ctx context.Context, id string) (*volume.Volume, int, error) {
	state, err := c.Watch(ctx, id, func(e api.Event) error {
		if e.Type == api.EventPreview {
			return errPreviewReady
		}
		return nil
	})
	switch {
	case errors.Is(err, errPreviewReady):
		return c.Preview(ctx, id)
	case err != nil:
		return nil, 0, err
	default:
		return nil, 0, fmt.Errorf("client: job %s reached %s without a preview event", id, state)
	}
}
