package client

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"strconv"

	"ifdk/internal/compress"
	"ifdk/pkg/api"
	"ifdk/pkg/volume"
)

// StreamResult is the outcome of consuming one job's slice stream to its
// terminal part.
type StreamResult struct {
	Volume *volume.Volume // the reassembled full volume (axial z-slices)
	Final  api.View       // the job's terminal view from the closing part
	Slices int            // slice parts received (== Volume.Nz on success)
	// WireBytes counts slice payload bytes as they crossed the wire
	// (compressed when per-part gzip was negotiated); RawBytes counts the
	// decoded slice bytes. Their ratio is the stream's compression saving.
	WireBytes int64
	RawBytes  int64

	// Progressive jobs lead the stream with their coarse tier (parts marked
	// X-Preview-Factor, indexed on the coarse grid). It reassembles here,
	// separate from Volume — previews refine, they never overwrite.
	Preview       *volume.Volume
	PreviewFactor int // decimation factor of the preview parts (0: none seen)
	PreviewSlices int // preview parts received (== Preview.Nz when complete)
}

// StreamHooks are the per-part callbacks of StreamProgressive. Both run
// after the part is decoded; either may be nil.
type StreamHooks struct {
	// OnSlice fires per full-resolution slice part (z on the full grid).
	OnSlice func(z, total int)
	// OnPreview fires per coarse preview part (z on the coarse grid,
	// total the coarse slice count) — the hook for time-to-first-preview
	// measurements and early rendering.
	OnPreview func(z, total, factor int)
}

// Stream consumes GET /v1/jobs/{id}/stream — live slices mid-run, replayed
// slices on late attach, terminal JSON view last — and reassembles the
// parts into a volume with exactly-once accounting: a duplicated or
// malformed slice part fails the stream rather than silently overwriting,
// and a terminal part arriving before every slice landed reports which
// count was short. Per-part gzip (negotiated via WithGzip) is decoded
// transparently. onSlice, when non-nil, runs after each slice part is
// decoded (z is the global slice index) — the hook for time-to-first-slice
// measurements and progressive rendering. Preview parts of a progressive
// job are reassembled into StreamResult.Preview; to observe them as they
// arrive, use StreamProgressive.
func (c *Client) Stream(ctx context.Context, id string, onSlice func(z, total int)) (*StreamResult, error) {
	return c.StreamProgressive(ctx, id, StreamHooks{OnSlice: onSlice})
}

// StreamProgressive is Stream with per-tier callbacks: OnPreview fires for
// each coarse part of a progressive job's leading tier, OnSlice for each
// full-resolution part. The server guarantees every preview part precedes
// the first full-resolution part, so OnPreview marks time-to-first-volume
// long before the stream completes.
func (c *Client) StreamProgressive(ctx context.Context, id string, hooks StreamHooks) (*StreamResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return nil, err
	}
	// Explicit either way: left unset, Go's transport would advertise gzip
	// on its own and the stream's per-part encoding would stop being the
	// caller's choice.
	if c.gzip {
		req.Header.Set("Accept-Encoding", "gzip")
	} else {
		req.Header.Set("Accept-Encoding", "identity")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	defer resp.Body.Close()
	_, params, err := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	if err != nil || params["boundary"] == "" {
		return nil, fmt.Errorf("client: stream Content-Type %q has no boundary", resp.Header.Get("Content-Type"))
	}

	res := &StreamResult{}
	var seen, seenPrev []bool
	mr := multipart.NewReader(resp.Body, params["boundary"])
	for {
		part, err := mr.NextPart()
		if err != nil {
			return nil, fmt.Errorf("client: stream for %s ended without a terminal part: %w", id, err)
		}
		if part.Header.Get("Content-Type") == "application/json" {
			if err := json.NewDecoder(part).Decode(&res.Final); err != nil {
				return nil, fmt.Errorf("client: bad terminal part: %w", err)
			}
			break
		}
		blob, err := io.ReadAll(part)
		if err != nil {
			return nil, fmt.Errorf("client: reading slice part: %w", err)
		}
		res.WireBytes += int64(len(blob))
		if part.Header.Get("Content-Encoding") == api.EncodingGzip {
			if blob, err = compress.Gunzip(blob); err != nil {
				return nil, fmt.Errorf("client: slice part: %w", err)
			}
		}
		res.RawBytes += int64(len(blob))
		z, err := strconv.Atoi(part.Header.Get(api.HeaderSliceZ))
		if err != nil {
			return nil, fmt.Errorf("client: slice part without a %s header", api.HeaderSliceZ)
		}
		total, err := strconv.Atoi(part.Header.Get(api.HeaderSliceTotal))
		if err != nil || total <= 0 {
			return nil, fmt.Errorf("client: slice part without a %s header", api.HeaderSliceTotal)
		}
		img, err := volume.ImageFromBytes(blob)
		if err != nil {
			return nil, fmt.Errorf("client: slice %d payload: %w", z, err)
		}
		if pf := part.Header.Get(api.HeaderPreviewFactor); pf != "" {
			factor, err := strconv.Atoi(pf)
			if err != nil || factor < 1 {
				return nil, fmt.Errorf("client: preview part with bad %s header %q", api.HeaderPreviewFactor, pf)
			}
			if res.Preview == nil {
				res.Preview = volume.New(img.W, img.H, total, volume.IMajor)
				res.PreviewFactor = factor
				seenPrev = make([]bool, total)
			}
			if z < 0 || z >= len(seenPrev) {
				return nil, fmt.Errorf("client: preview slice index %d out of range [0,%d)", z, len(seenPrev))
			}
			if seenPrev[z] {
				return nil, fmt.Errorf("client: preview slice %d delivered twice", z)
			}
			seenPrev[z] = true
			if err := res.Preview.SetSliceZ(z, img); err != nil {
				return nil, err
			}
			res.PreviewSlices++
			if hooks.OnPreview != nil {
				hooks.OnPreview(z, total, factor)
			}
			continue
		}
		if res.Volume == nil {
			res.Volume = volume.New(img.W, img.H, total, volume.IMajor)
			seen = make([]bool, total)
		}
		if z < 0 || z >= len(seen) {
			return nil, fmt.Errorf("client: slice index %d out of range [0,%d)", z, len(seen))
		}
		if seen[z] {
			return nil, fmt.Errorf("client: slice %d delivered twice", z)
		}
		seen[z] = true
		if err := res.Volume.SetSliceZ(z, img); err != nil {
			return nil, err
		}
		res.Slices++
		if hooks.OnSlice != nil {
			hooks.OnSlice(z, total)
		}
	}

	if res.Final.State == api.StateDone {
		if res.Volume == nil {
			return nil, fmt.Errorf("client: job %s done but stream carried no slices", id)
		}
		if res.Slices != res.Volume.Nz {
			return nil, fmt.Errorf("client: job %s done but only %d/%d slices streamed", id, res.Slices, res.Volume.Nz)
		}
	}
	return res, nil
}
