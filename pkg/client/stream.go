package client

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"strconv"

	"ifdk/internal/compress"
	"ifdk/internal/volume"
	"ifdk/pkg/api"
)

// StreamResult is the outcome of consuming one job's slice stream to its
// terminal part.
type StreamResult struct {
	Volume *volume.Volume // the reassembled full volume (axial z-slices)
	Final  api.View       // the job's terminal view from the closing part
	Slices int            // slice parts received (== Volume.Nz on success)
	// WireBytes counts slice payload bytes as they crossed the wire
	// (compressed when per-part gzip was negotiated); RawBytes counts the
	// decoded slice bytes. Their ratio is the stream's compression saving.
	WireBytes int64
	RawBytes  int64
}

// Stream consumes GET /v1/jobs/{id}/stream — live slices mid-run, replayed
// slices on late attach, terminal JSON view last — and reassembles the
// parts into a volume with exactly-once accounting: a duplicated or
// malformed slice part fails the stream rather than silently overwriting,
// and a terminal part arriving before every slice landed reports which
// count was short. Per-part gzip (negotiated via WithGzip) is decoded
// transparently. onSlice, when non-nil, runs after each slice part is
// decoded (z is the global slice index) — the hook for time-to-first-slice
// measurements and progressive rendering.
func (c *Client) Stream(ctx context.Context, id string, onSlice func(z, total int)) (*StreamResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return nil, err
	}
	// Explicit either way: left unset, Go's transport would advertise gzip
	// on its own and the stream's per-part encoding would stop being the
	// caller's choice.
	if c.gzip {
		req.Header.Set("Accept-Encoding", "gzip")
	} else {
		req.Header.Set("Accept-Encoding", "identity")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	defer resp.Body.Close()
	_, params, err := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	if err != nil || params["boundary"] == "" {
		return nil, fmt.Errorf("client: stream Content-Type %q has no boundary", resp.Header.Get("Content-Type"))
	}

	res := &StreamResult{}
	var seen []bool
	mr := multipart.NewReader(resp.Body, params["boundary"])
	for {
		part, err := mr.NextPart()
		if err != nil {
			return nil, fmt.Errorf("client: stream for %s ended without a terminal part: %w", id, err)
		}
		if part.Header.Get("Content-Type") == "application/json" {
			if err := json.NewDecoder(part).Decode(&res.Final); err != nil {
				return nil, fmt.Errorf("client: bad terminal part: %w", err)
			}
			break
		}
		blob, err := io.ReadAll(part)
		if err != nil {
			return nil, fmt.Errorf("client: reading slice part: %w", err)
		}
		res.WireBytes += int64(len(blob))
		if part.Header.Get("Content-Encoding") == api.EncodingGzip {
			if blob, err = compress.Gunzip(blob); err != nil {
				return nil, fmt.Errorf("client: slice part: %w", err)
			}
		}
		res.RawBytes += int64(len(blob))
		z, err := strconv.Atoi(part.Header.Get(api.HeaderSliceZ))
		if err != nil {
			return nil, fmt.Errorf("client: slice part without a %s header", api.HeaderSliceZ)
		}
		total, err := strconv.Atoi(part.Header.Get(api.HeaderSliceTotal))
		if err != nil || total <= 0 {
			return nil, fmt.Errorf("client: slice part without a %s header", api.HeaderSliceTotal)
		}
		img, err := volume.ImageFromBytes(blob)
		if err != nil {
			return nil, fmt.Errorf("client: slice %d payload: %w", z, err)
		}
		if res.Volume == nil {
			res.Volume = volume.New(img.W, img.H, total, volume.IMajor)
			seen = make([]bool, total)
		}
		if z < 0 || z >= len(seen) {
			return nil, fmt.Errorf("client: slice index %d out of range [0,%d)", z, len(seen))
		}
		if seen[z] {
			return nil, fmt.Errorf("client: slice %d delivered twice", z)
		}
		seen[z] = true
		if err := res.Volume.SetSliceZ(z, img); err != nil {
			return nil, err
		}
		res.Slices++
		if onSlice != nil {
			onSlice(z, total)
		}
	}

	if res.Final.State == api.StateDone {
		if res.Volume == nil {
			return nil, fmt.Errorf("client: job %s done but stream carried no slices", id)
		}
		if res.Slices != res.Volume.Nz {
			return nil, fmt.Errorf("client: job %s done but only %d/%d slices streamed", id, res.Slices, res.Volume.Nz)
		}
	}
	return res, nil
}
