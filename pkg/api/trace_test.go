package api

import (
	"regexp"
	"strings"
	"testing"
)

func TestTraceParentRoundTrip(t *testing.T) {
	tid, sid := NewTraceID(), NewSpanID()
	if !regexp.MustCompile(`^[0-9a-f]{32}$`).MatchString(tid) {
		t.Fatalf("trace ID %q is not 32 hex chars", tid)
	}
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(sid) {
		t.Fatalf("span ID %q is not 16 hex chars", sid)
	}
	hdr := FormatTraceParent(tid, sid)
	if !strings.HasPrefix(hdr, "00-") || !strings.HasSuffix(hdr, "-01") {
		t.Fatalf("traceparent %q is not version 00 / sampled", hdr)
	}
	gotT, gotS, err := ParseTraceParent(hdr)
	if err != nil {
		t.Fatal(err)
	}
	if gotT != tid || gotS != sid {
		t.Fatalf("round trip: got (%s, %s), want (%s, %s)", gotT, gotS, tid, sid)
	}
}

func TestParseTraceParentRejects(t *testing.T) {
	for _, bad := range []string{
		"",
		"nonsense",
		"00-short-abcdefabcdefabcd-01",
		"00-" + strings.Repeat("0", 32) + "-abcdefabcdefabcd-01",                // all-zero trace
		"00-" + strings.Repeat("a", 32) + "-" + strings.Repeat("0", 16) + "-01", // all-zero span
		"00-" + strings.Repeat("g", 32) + "-abcdefabcdefabcd-01",                // not hex
	} {
		if _, _, err := ParseTraceParent(bad); err == nil {
			t.Errorf("ParseTraceParent(%q) accepted", bad)
		}
	}
	// Future versions and trailing fields are tolerated.
	tid, sid := NewTraceID(), NewSpanID()
	if _, _, err := ParseTraceParent("cc-" + tid + "-" + sid + "-01-extra"); err != nil {
		t.Errorf("future-version traceparent rejected: %v", err)
	}
}
