package api

// EventType labels one job lifecycle event on the wire.
type EventType string

const (
	EventQueued    EventType = "queued"    // admitted into the queue
	EventStarted   EventType = "started"   // a worker picked the job up
	EventRound     EventType = "round"     // one AllGather round completed (coalesced)
	EventSlice     EventType = "slice"     // one output z-slice landed on the PFS
	EventPreview   EventType = "preview"   // the decimated preview volume is ready and fetchable
	EventTrace     EventType = "trace"     // the job's trace has been assembled and is fetchable
	EventDone      EventType = "done"      // terminal: reconstruction finished
	EventFailed    EventType = "failed"    // terminal: reconstruction errored
	EventCancelled EventType = "cancelled" // terminal: cancelled by the client or shutdown
)

// Terminal reports whether the event ends a job's stream.
func (t EventType) Terminal() bool {
	return t == EventDone || t == EventFailed || t == EventCancelled
}

// Event is one entry of a job's event stream, served over SSE by
// GET /v1/jobs/{id}/events. Seq is a per-job sequence number, strictly
// increasing across the stream, and doubles as the SSE event id for
// Last-Event-ID resumption.
type Event struct {
	Seq  int64     `json:"seq"`
	Job  string    `json:"job"`
	Type EventType `json:"type"`
	Time string    `json:"time"`

	// round progress (Type == EventRound)
	Done  int `json:"done,omitempty"`  // completed AllGather rounds
	Total int `json:"total,omitempty"` // Np rounds, or Nz for slice events

	// slice delivery (Type == EventSlice)
	Z       int `json:"z"`                 // global z index of the finished slice
	Written int `json:"written,omitempty"` // cumulative slices on the PFS

	// preview availability (Type == EventPreview): the decimation factor of
	// the finished preview tier; Total carries the coarse slice count.
	Factor int `json:"factor,omitempty"`

	// terminal / state-carrying events
	State State  `json:"state,omitempty"`
	Error string `json:"error,omitempty"`

	// trace availability (Type == EventTrace)
	TraceID string `json:"trace_id,omitempty"`
}
