package api

// AdmissionStats counts admission decisions since startup.
type AdmissionStats struct {
	Admitted      int64 `json:"admitted"`       // jobs that entered the queue
	RejectedFull  int64 `json:"rejected_full"`  // queue at job-count capacity
	RejectedCost  int64 `json:"rejected_cost"`  // queued-work seconds budget
	RejectedBytes int64 `json:"rejected_bytes"` // in-flight working-set budget
	RejectedQuota int64 `json:"rejected_quota"` // per-client rate quota
}

// WaitStats summarizes recent queue waits for one priority class.
type WaitStats struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50_sec"`
	P90   float64 `json:"p90_sec"`
	P99   float64 `json:"p99_sec"`
}

// CacheStats is the result cache's counters snapshot. Hits counts
// in-memory hits only; lookups served by the PFS spill tier (entries
// evicted under byte pressure and written to storage instead of dropped)
// count as SpillHits, so the two tiers' effectiveness is distinguishable.
type CacheStats struct {
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Entries  int   `json:"entries"`
	Bytes    int64 `json:"bytes"`
	MaxBytes int64 `json:"max_bytes"`

	Spills      int64 `json:"spills,omitempty"`       // evictions written to the PFS spill tier
	SpillHits   int64 `json:"spill_hits,omitempty"`   // lookups served from the spill tier
	SpillBytes  int64 `json:"spill_bytes,omitempty"`  // cumulative payload bytes spilled
	SpillErrors int64 `json:"spill_errors,omitempty"` // spill writes/reads that failed
}

// Metrics is the service-level counters snapshot served by /v1/metrics. A
// front router serves the same shape, aggregated over its live backends, so
// dashboards point at either interchangeably.
type Metrics struct {
	UptimeSec     float64              `json:"uptime_sec"`
	Workers       int                  `json:"workers"`
	BusyWorkers   int                  `json:"busy_workers"`
	QueueDepth    int                  `json:"queue_depth"`
	QueueCap      int                  `json:"queue_cap"`
	QueueCostSec  float64              `json:"queue_cost_sec"`           // estimated seconds of queued work
	MaxQueuedSec  float64              `json:"max_queued_sec,omitempty"` // cost budget (0 = unlimited)
	InflightBytes int64                `json:"inflight_est_bytes"`       // estimated working set of admitted jobs
	MaxInflight   int64                `json:"max_inflight_bytes,omitempty"`
	PoolBytes     int64                `json:"pool_in_use_bytes"` // measured: engine buffer pools
	CostScale     float64              `json:"cost_scale"`        // learned wall-sec per model-sec
	Jobs          map[string]int       `json:"jobs"`
	Completed     int64                `json:"completed"` // real reconstructions only
	CacheHits     int64                `json:"cache_hits"`
	Failed        int64                `json:"failed"`
	Cancelled     int64                `json:"cancelled"`
	JobsPerSec    float64              `json:"jobs_per_sec"` // real reconstructions per second
	Admission     AdmissionStats       `json:"admission"`
	WaitSec       map[string]WaitStats `json:"wait_sec"` // per-priority-class queue waits
	Cache         CacheStats           `json:"cache"`
	PFSReadMB     float64              `json:"pfs_read_mb"`
	PFSWriteMB    float64              `json:"pfs_write_mb"`
	PFSObjects    int                  `json:"pfs_objects"`
	EventDrops    int64                `json:"event_drops"` // bus events discarded by bounded per-job logs

	// Backends is filled only by a front router: per-backend health and
	// probe/scrape latency alongside the aggregated counters above.
	Backends []BackendHealth `json:"backends,omitempty"`
}

// BackendHealth is one backend's status in a router's GET /v1/backends
// response.
type BackendHealth struct {
	Name  string `json:"name"`
	URL   string `json:"url"`
	Alive bool   `json:"alive"`
	Jobs  int    `json:"jobs"` // jobs the router currently routes to it

	// Probe/scrape observability (PR 6): consecutive health-probe failures
	// (0 while alive), the last health probe's latency, and the last
	// /v1/metrics scrape's latency.
	ProbeFails      int     `json:"probe_fails"`
	ProbeLatencyMS  float64 `json:"probe_latency_ms,omitempty"`
	ScrapeLatencyMS float64 `json:"scrape_latency_ms,omitempty"`
}
