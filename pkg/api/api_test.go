package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"testing"
)

// Every code must map to a deliberate non-500 status and a deliberate
// retryability verdict; a code falling through to 500 means someone added a
// code without extending the contract tables.
func TestCodeTablesAreTotal(t *testing.T) {
	codes := []string{
		CodeBadRequest, CodeInvalidSpec, CodeNotFound, CodeNotYetWritten,
		CodeTerminal, CodeNotTerminal, CodeQueueFull, CodeCostBudget,
		CodeWorkingSet, CodeQuotaExhausted, CodeShuttingDown, CodeUnavailable,
	}
	for _, c := range codes {
		if got := HTTPStatus(c); got == http.StatusInternalServerError {
			t.Errorf("code %q falls through to 500", c)
		}
	}
	if got := HTTPStatus(CodeInternal); got != http.StatusInternalServerError {
		t.Errorf("HTTPStatus(internal) = %d, want 500", got)
	}
	if got := HTTPStatus("no_such_code"); got != http.StatusInternalServerError {
		t.Errorf("unknown code mapped to %d, want 500", got)
	}
	if Retryable("no_such_code") {
		t.Error("unknown codes must be non-retryable")
	}
}

func TestHTTPStatusMapping(t *testing.T) {
	want := map[string]int{
		CodeBadRequest:     http.StatusBadRequest,
		CodeInvalidSpec:    http.StatusBadRequest,
		CodeNotFound:       http.StatusNotFound,
		CodeNotYetWritten:  http.StatusNotFound,
		CodeTerminal:       http.StatusConflict,
		CodeNotTerminal:    http.StatusConflict,
		CodeQuotaExhausted: http.StatusTooManyRequests,
		CodeQueueFull:      http.StatusServiceUnavailable,
		CodeCostBudget:     http.StatusServiceUnavailable,
		CodeWorkingSet:     http.StatusServiceUnavailable,
		CodeShuttingDown:   http.StatusServiceUnavailable,
		CodeUnavailable:    http.StatusServiceUnavailable,
	}
	for code, status := range want {
		if got := HTTPStatus(code); got != status {
			t.Errorf("HTTPStatus(%s) = %d, want %d", code, got, status)
		}
	}
}

func TestRetryable(t *testing.T) {
	for _, code := range []string{CodeQueueFull, CodeCostBudget, CodeWorkingSet,
		CodeQuotaExhausted, CodeNotYetWritten, CodeUnavailable} {
		if !Retryable(code) {
			t.Errorf("code %q should be retryable", code)
		}
	}
	for _, code := range []string{CodeBadRequest, CodeInvalidSpec, CodeNotFound,
		CodeTerminal, CodeNotTerminal, CodeShuttingDown, CodeInternal} {
		if Retryable(code) {
			t.Errorf("code %q should not be retryable", code)
		}
	}
}

func TestErrorAsError(t *testing.T) {
	e := &Error{Code: CodeQuotaExhausted, Message: `client "alice" out of tokens`, RetryAfter: 1}
	wrapped := fmt.Errorf("submit: %w", e)
	var apiErr *Error
	if !errors.As(wrapped, &apiErr) {
		t.Fatal("errors.As failed to recover *api.Error from a wrapped chain")
	}
	if apiErr.Code != CodeQuotaExhausted || !apiErr.Retryable() {
		t.Fatalf("recovered %+v", apiErr)
	}
	if e.Error() != `api: quota_exhausted: client "alice" out of tokens` {
		t.Fatalf("Error() = %q", e.Error())
	}
	if (&Error{Code: CodeNotFound}).Error() != "api: not_found" {
		t.Fatalf("bare-code Error() = %q", (&Error{Code: CodeNotFound}).Error())
	}
}

// The envelope must round-trip through JSON with its documented field names.
func TestErrorJSONShape(t *testing.T) {
	blob, err := json.Marshal(&Error{Code: CodeQueueFull, Message: "full", RetryAfter: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	if m["code"] != "queue_full" || m["message"] != "full" || m["retry_after_sec"] != 2.5 {
		t.Fatalf("unexpected JSON shape: %s", blob)
	}
	blob, _ = json.Marshal(&Error{Code: CodeNotFound, Message: "gone"})
	var m2 map[string]any
	_ = json.Unmarshal(blob, &m2)
	if _, present := m2["retry_after_sec"]; present {
		t.Fatalf("zero RetryAfter must be omitted: %s", blob)
	}
}
