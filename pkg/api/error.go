package api

import (
	"fmt"
	"net/http"
)

// Error codes. Codes are the stable, machine-readable half of the error
// contract: clients branch on Code, never on Message (which is free-form
// human context and may change between releases). New codes may be added
// within a version; unknown codes must be treated as non-retryable.
const (
	// CodeBadRequest: the request itself is malformed — unparsable JSON,
	// a non-integer slice index, a negative Last-Event-ID.
	CodeBadRequest = "bad_request"
	// CodeInvalidSpec: the request parsed but the Spec is not admissible
	// (unknown phantom or window, problem size over the hard limits).
	CodeInvalidSpec = "invalid_spec"
	// CodeNotFound: no such job (or it was deleted/pruned).
	CodeNotFound = "not_found"
	// CodeNotYetWritten: the requested slice is valid but has not landed on
	// the PFS yet; retry after a short wait (or use /events to be told).
	CodeNotYetWritten = "not_yet_written"
	// CodeTerminal: the job already reached a terminal state that makes the
	// request meaningless — streaming slices of a failed/cancelled job.
	CodeTerminal = "terminal"
	// CodeNotTerminal: the operation requires a terminal job (DELETE of a
	// live job that could not be cancelled).
	CodeNotTerminal = "not_terminal"
	// CodeQueueFull: the admission queue holds its maximum number of jobs.
	CodeQueueFull = "queue_full"
	// CodeCostBudget: admitting the job would exceed the queued-work
	// seconds budget.
	CodeCostBudget = "cost_budget"
	// CodeWorkingSet: admitting the job would exceed the in-flight
	// working-set byte budget.
	CodeWorkingSet = "working_set"
	// CodeQuotaExhausted: the client's submission token bucket is empty.
	CodeQuotaExhausted = "quota_exhausted"
	// CodeShuttingDown: the server is draining and admits nothing.
	CodeShuttingDown = "shutting_down"
	// CodeUnavailable: a front router has no live backend for the request
	// (all backends down, or the owning backend died mid-job).
	CodeUnavailable = "unavailable"
	// CodeInternal: the server failed in a way the client cannot fix.
	CodeInternal = "internal"
)

// Error is the structured envelope every non-2xx response body carries:
//
//	{"code":"quota_exhausted","message":"client \"alice\": ...","retry_after_sec":1}
//
// It implements the error interface, so SDK calls surface it directly;
// errors.As(err, &apiErr) recovers the code from a wrapped chain.
type Error struct {
	Code       string  `json:"code"`
	Message    string  `json:"message"`
	RetryAfter float64 `json:"retry_after_sec,omitempty"` // hint, seconds; 0 = none
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Message == "" {
		return "api: " + e.Code
	}
	return fmt.Sprintf("api: %s: %s", e.Code, e.Message)
}

// Retryable reports whether the same request may succeed if simply retried
// later (with backoff) against the same endpoint: transient saturation and
// not-yet-produced data, as opposed to caller bugs and settled outcomes.
func (e *Error) Retryable() bool { return Retryable(e.Code) }

// Retryable reports whether code denotes a transient condition. Unknown
// codes are conservatively non-retryable.
func Retryable(code string) bool {
	switch code {
	case CodeQueueFull, CodeCostBudget, CodeWorkingSet, CodeQuotaExhausted,
		CodeNotYetWritten, CodeUnavailable:
		return true
	}
	return false
}

// HTTPStatus maps an error code to its HTTP status. Unknown codes map to
// 500: an unrecognized failure is a server-side contract violation, not the
// client's fault.
func HTTPStatus(code string) int {
	switch code {
	case CodeBadRequest, CodeInvalidSpec:
		return http.StatusBadRequest
	case CodeNotFound, CodeNotYetWritten:
		return http.StatusNotFound
	case CodeTerminal, CodeNotTerminal:
		return http.StatusConflict
	case CodeQuotaExhausted:
		return http.StatusTooManyRequests
	case CodeQueueFull, CodeCostBudget, CodeWorkingSet, CodeShuttingDown, CodeUnavailable:
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}
