package api

import (
	"encoding/json"
	"strings"
	"testing"
)

// The quality field is part of the frozen v1 wire contract: the constant
// strings, the Spec's JSON shape, and the omit-when-empty behaviour of the
// View's tier fields are what clients and the fleet router hash and branch
// on.
func TestQualityWireContract(t *testing.T) {
	if QualityFull != "full" || QualityPreview != "preview" || QualityProgressive != "progressive" {
		t.Fatalf("quality constants changed: %q %q %q", QualityFull, QualityPreview, QualityProgressive)
	}

	// Spec marshals quality under the documented name.
	b, err := json.Marshal(Spec{Quality: QualityProgressive})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"quality":"progressive"`) {
		t.Fatalf("Spec JSON = %s, want a quality field", b)
	}

	// A pre-quality client's spec (no quality key) decodes to the zero
	// value, which servers must treat as full resolution.
	var s Spec
	if err := json.Unmarshal([]byte(`{"phantom":"sphere","nx":16}`), &s); err != nil {
		t.Fatal(err)
	}
	if s.Quality != "" {
		t.Fatalf("legacy spec decoded quality %q, want empty (server defaults to full)", s.Quality)
	}
}

func TestViewQualityFieldsOmitEmpty(t *testing.T) {
	// A full-quality view carries no preview factor; old clients see no new
	// keys for the zero values.
	b, err := json.Marshal(View{Quality: QualityFull})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "preview_factor") {
		t.Fatalf("full view leaks preview_factor: %s", b)
	}
	b, err = json.Marshal(View{Quality: QualityProgressive, PreviewFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"quality":"progressive"`) || !strings.Contains(string(b), `"preview_factor":2`) {
		t.Fatalf("progressive view JSON = %s, want quality and preview_factor", b)
	}
}

func TestPreviewEventShape(t *testing.T) {
	b, err := json.Marshal(Event{Type: EventPreview, Factor: 4, Total: 32})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"type":"preview"`, `"factor":4`, `"total":32`} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("preview event JSON = %s, want %s", b, want)
		}
	}
	// Non-preview events never carry the factor key.
	b, err = json.Marshal(Event{Type: EventSlice, Z: 3})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "factor") {
		t.Fatalf("slice event leaks factor: %s", b)
	}
}
