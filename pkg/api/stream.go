package api

// Wire constants of the streaming surface. GET /v1/jobs/{id}/stream is a
// chunked multipart/mixed body: one part per output z-slice in the PFS image
// format (little-endian uint32 W, H header + float32 payload), delivered as
// each row group's epilogue lands it — while the job is still running —
// followed by a closing JSON part carrying the job's terminal View.
const (
	// ContentTypeSlice is the Content-Type of one slice part.
	ContentTypeSlice = "application/x-ifdk-slice"
	// HeaderSliceZ carries the part's global z index (0-based).
	HeaderSliceZ = "X-Slice-Z"
	// HeaderSliceTotal carries the volume's total slice count Nz.
	HeaderSliceTotal = "X-Slice-Total"
	// HeaderStreamEnd is set on the closing JSON part to the job's terminal
	// State.
	HeaderStreamEnd = "X-Stream-End"
	// HeaderPreviewFactor marks a slice part as belonging to the decimated
	// preview tier of a progressive job and carries its decimation factor.
	// Preview parts are emitted before any full-resolution part; their
	// HeaderSliceZ / HeaderSliceTotal indices address the coarse grid
	// (total = Nz/factor), so consumers must reassemble the two tiers into
	// separate volumes. Absent on full-resolution parts.
	HeaderPreviewFactor = "X-Preview-Factor"
	// EncodingGzip is the per-part Content-Encoding applied to slice
	// payloads when the request advertised Accept-Encoding: gzip. Parts are
	// compressed independently so a late-attaching client still decodes
	// from its first part.
	EncodingGzip = "gzip"
)
