package api

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
)

// Tracing wire contract. Every job carries one trace: the SDK mints the
// trace ID at Submit, propagates it in a W3C-style `traceparent` request
// header (https://www.w3.org/TR/trace-context/), the router adds its proxy
// span and forwards, and the owning backend records the job's lifecycle
// spans. GET /v1/jobs/{id}/trace returns the assembled Trace.

// TraceParentHeader is the HTTP request header carrying trace context.
const TraceParentHeader = "traceparent"

// Span is one timed operation within a job's trace. Spans form a tree via
// ParentSpanID; consumers must tolerate orphan parents (treat the span as a
// root) so partial traces — e.g. a router span for a backend that died —
// still render.
type Span struct {
	TraceID      string            `json:"trace_id"`
	SpanID       string            `json:"span_id"`
	ParentSpanID string            `json:"parent_span_id,omitempty"`
	Name         string            `json:"name"`    // e.g. "job", "queue.wait", "filter.round"
	Service      string            `json:"service"` // "router" | "ifdkd" | "client"
	Start        string            `json:"start"`   // RFC3339Nano
	DurationSec  float64           `json:"duration_sec"`
	Attrs        map[string]string `json:"attrs,omitempty"`
}

// Trace is the response of GET /v1/jobs/{id}/trace: the flat span list for
// one job. Complete is false while the job is still running (spans cover
// only what has happened so far) and true once the terminal span set has
// been published.
type Trace struct {
	TraceID  string `json:"trace_id"`
	Job      string `json:"job"`
	Complete bool   `json:"complete"`
	Spans    []Span `json:"spans"`
}

// NewTraceID returns a fresh random 32-hex-digit trace ID.
func NewTraceID() string {
	var b [16]byte
	_, _ = rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// NewSpanID returns a fresh random 16-hex-digit span ID.
func NewSpanID() string {
	var b [8]byte
	_, _ = rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// FormatTraceParent renders the traceparent header value for the given
// trace and parent span: version 00, sampled flag set.
func FormatTraceParent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

// ParseTraceParent extracts the trace and parent-span IDs from a
// traceparent header value. It accepts any version and ignores the flags;
// malformed or all-zero IDs yield an error so callers fall back to minting
// a fresh trace.
func ParseTraceParent(s string) (traceID, spanID string, err error) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) < 4 {
		return "", "", fmt.Errorf("api: traceparent %q: want version-traceid-spanid-flags", s)
	}
	traceID, spanID = strings.ToLower(parts[1]), strings.ToLower(parts[2])
	if !isHex(traceID, 32) || allZero(traceID) {
		return "", "", fmt.Errorf("api: traceparent %q: bad trace id", s)
	}
	if !isHex(spanID, 16) || allZero(spanID) {
		return "", "", fmt.Errorf("api: traceparent %q: bad span id", s)
	}
	return traceID, spanID, nil
}

func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool { return strings.Trim(s, "0") == "" }
