// Package api is the versioned public contract of the iFDK reconstruction
// service: the wire types every transport speaks — the HTTP server in
// internal/service, the Go SDK in pkg/client, the front router in
// cmd/ifdk-router, and any external consumer that talks JSON to an ifdkd.
//
// Versioning policy: everything in this package describes API version
// Version ("v1"), mounted under the /v1/ URL prefix. Within v1, fields are
// only ever added (never renamed, retyped or removed) and error codes are
// only ever added; unknown JSON fields and unknown codes must be ignored by
// clients. A breaking change mints /v2 alongside /v1, never in place.
package api

// Version is the API generation this package describes. All routes live
// under "/" + Version + "/".
const Version = "v1"

// State is a job's lifecycle phase.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Spec is a reconstruction request as it arrives over the wire: a synthetic
// cone-beam scan of a named phantom plus the grid to reconstruct it on.
// Zero-valued fields take server-side defaults.
type Spec struct {
	Phantom  string `json:"phantom"`  // shepplogan | sphere | industrial
	NX       int    `json:"nx"`       // output voxels per side
	NU       int    `json:"nu"`       // detector pixels per side (0 → 2·nx)
	NP       int    `json:"np"`       // projections (0 → 2·nx)
	R        int    `json:"r"`        // grid rows (0 → 2)
	C        int    `json:"c"`        // grid columns (0 → 2)
	Window   string `json:"window"`   // ramp window name ("" → ram-lak)
	Quality  string `json:"quality"`  // full | preview | progressive ("" → full; see quality.go)
	Priority string `json:"priority"` // low | normal | high ("" → normal)
	Verify   bool   `json:"verify"`   // compare against the serial FDK reference
	Client   string `json:"client"`   // client id for per-client quotas ("" → "anonymous")
}

// View is the JSON representation of a job returned by the API.
type View struct {
	ID        string  `json:"id"`
	State     State   `json:"state"`
	Spec      Spec    `json:"spec"`
	Priority  string  `json:"priority"`
	Progress  float64 `json:"progress"` // 0..1
	CacheHit  bool    `json:"cache_hit"`
	Error     string  `json:"error,omitempty"`
	RelRMSE   float64 `json:"rel_rmse,omitempty"`
	Verified  bool    `json:"verified,omitempty"`
	Submitted string  `json:"submitted"`
	Started   string  `json:"started,omitempty"`
	Finished  string  `json:"finished,omitempty"`
	WaitSec   float64 `json:"wait_sec"`
	RunSec    float64 `json:"run_sec,omitempty"`
	EstRunSec float64 `json:"est_run_sec"` // raw Sec. 4.2 model runtime (model seconds, machine-independent)
	Cost      float64 `json:"cost"`        // calibrated seconds charged against the queued-work budget
	EstBytes  int64   `json:"est_bytes"`   // working set charged against the byte budget
	TraceID   string  `json:"trace_id,omitempty"`
	Stages    Stages  `json:"stages,omitempty"`
	Recovered bool    `json:"recovered,omitempty"` // rebuilt from the write-ahead journal after a restart

	// Quality is the resolved quality tier ("full" | "preview" |
	// "progressive"); PreviewFactor is the decimation factor of the preview
	// tier (0 for full-quality jobs).
	Quality       string `json:"quality,omitempty"`
	PreviewFactor int    `json:"preview_factor,omitempty"`
}

// Stages is the wire form of the pipeline stage timings (seconds, max over
// ranks).
type Stages struct {
	Load        float64 `json:"load"`
	Filter      float64 `json:"filter"`
	AllGather   float64 `json:"allgather"`
	Backproject float64 `json:"backproject"`
	Compute     float64 `json:"compute"`
	Reduce      float64 `json:"reduce"`
	Store       float64 `json:"store"`
	Total       float64 `json:"total"`
}
