package api

// Quality tiers of the v1 Spec's quality knob. The knob selects how the
// service trades fidelity for time-to-first-voxel, the way an adaptive video
// CDN trades bitrate for startup latency:
//
//   - QualityFull (the default, and what an absent or empty field means):
//     one full-resolution reconstruction, the pre-quality behaviour. Wire
//     compatibility: every Spec submitted before the field existed is a
//     full-quality Spec.
//   - QualityPreview: reconstruct only a decimated preview volume —
//     projections downsampled and every angular step-th one kept, on a
//     coarse voxel grid — in roughly the service's ~100 ms interactive
//     budget. The job's result IS the coarse volume; it is priced as a
//     cheap admission class and cached under a preview-specific key that
//     never aliases a full-resolution entry.
//   - QualityProgressive: coarse-to-fine serving under one job ID. The
//     preview tier runs first and is streamed as the leading parts of
//     GET /v1/jobs/{id}/stream (marked by HeaderPreviewFactor, announced by
//     EventPreview), then the job refines to full resolution; the final
//     volume is bit-exact with a QualityFull job of the same Spec and is
//     cached under the same full-resolution key.
//
// Any other value is rejected at admission with the invalid_spec envelope.
const (
	QualityFull        = "full"
	QualityPreview     = "preview"
	QualityProgressive = "progressive"
)
