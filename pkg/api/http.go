package api

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// WriteJSON writes v as a JSON response body with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// WriteError emits the Error envelope for a code: the HTTP status comes
// from HTTPStatus, and retryable codes carry retry_after_sec plus a
// matching Retry-After header. Every server speaking this contract — the
// daemon and the router — emits errors through here, so the wire shape
// cannot drift between them.
func WriteError(w http.ResponseWriter, code string, format string, args ...any) {
	e := &Error{Code: code, Message: fmt.Sprintf(format, args...)}
	if Retryable(code) {
		e.RetryAfter = 1
		w.Header().Set("Retry-After", "1")
	}
	WriteJSON(w, HTTPStatus(code), e)
}
